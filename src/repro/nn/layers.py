"""Layers used by the evaluation model zoo.

Every layer is a :class:`repro.nn.Module` whose ``forward`` builds the autodiff
graph with :class:`repro.tensorlib.Tensor` operations, so a single
``loss.backward()`` populates ``param.grad`` for all registered parameters —
which is exactly what the DDP simulator buckets and the compressors consume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.batched import active_world
from repro.nn.module import Module, Parameter
from repro.tensorlib import Tensor, functional as F, init
from repro.tensorlib.backend import get_backend


class Identity(Module):
    """Pass-through layer (used for optional residual projections)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.weight.ndim > 2:
            # World-batched replica view (world, out, in): keep the world axis
            # a matmul *batch* axis (per-slice GEMMs stay bit-identical to the
            # per-rank loop) and align it with x's leading axis by inserting
            # singleton batch axes for higher-rank inputs (e.g. ViT tokens).
            wT = self.weight.swapaxes(-1, -2)  # (world, in, out)
            if x.ndim > 3:
                wT = wT.reshape(
                    (wT.shape[0],) + (1,) * (x.ndim - 3) + wT.shape[1:]
                )
            out = x.matmul(wT)
        else:
            out = x.matmul(_transpose2d(self.weight))
        if self.bias is not None:
            bias = self.bias
            if bias.ndim > 1:
                # (world, out) view -> (world, 1, ..., 1, out) so the world
                # axes line up instead of colliding with the sample axis.
                bias = bias.reshape(
                    (bias.shape[0],) + (1,) * (out.ndim - 2) + (bias.shape[-1],)
                )
            out = out + bias
        return out


def _transpose2d(weight: Parameter) -> Tensor:
    """Differentiable transpose of a 2-D parameter."""
    return weight.transpose(1, 0)


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of ``(N, C, H, W)`` inputs.

    Running statistics are kept as buffers and used at evaluation time, matching
    the standard training/inference split that the TTA experiments rely on.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def _update_running_stats(self, batch_mean: np.ndarray, batch_var: np.ndarray) -> None:
        # World-batched (world, C) statistics are folded into the running
        # buffers sequentially in rank order: the buffers are *shared* across
        # replicas, and the per-rank loop updates them one rank at a time, so
        # the sequential fold reproduces its result bit-exactly.
        if batch_mean.ndim == 2:
            new_mean, new_var = self.running_mean, self.running_var
            for w in range(batch_mean.shape[0]):
                new_mean = (1 - self.momentum) * new_mean + self.momentum * batch_mean[w]
                new_var = (1 - self.momentum) * new_var + self.momentum * batch_var[w]
        else:
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            new_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
        self.update_buffer("running_mean", new_mean)
        self.update_buffer("running_var", new_var)

    def forward(self, x: Tensor) -> Tensor:
        # A >1-D weight is a world-batched replica view (world, C): statistics
        # then reduce per world slice over the (N, H, W) axes.
        batched = self.weight.ndim > 1
        if batched:
            axes = (1, 3, 4)
            param_shape = (self.weight.shape[0], 1, self.num_features, 1, 1)
        else:
            axes = (0, 2, 3)
            param_shape = (1, self.num_features, 1, 1)
        if self.training and x.dtype == np.float32:
            # Float32 fast path: one fused graph node with the analytic
            # batch-norm backward.  The statistics are computed once through
            # the backend kernel, folded into the running buffers, and handed
            # to fused_norm so the activations are only traversed once.  The
            # float64 path below keeps the composite formulation so its
            # results stay bit-identical to the historical behaviour.
            stats = get_backend().fused_norm_stats(x.data, axes, self.eps)
            stat_shape = (-1,) if not batched else (self.weight.shape[0], -1)
            self._update_running_stats(
                stats[0].reshape(stat_shape), stats[1].reshape(stat_shape)
            )
            return F.fused_norm(
                x, self.weight, self.bias, axes=axes, eps=self.eps,
                param_shape=param_shape, stats=stats,
            )
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            stat_shape = (-1,) if not batched else (self.weight.shape[0], -1)
            self._update_running_stats(
                mean.data.reshape(stat_shape), var.data.reshape(stat_shape)
            )
        else:
            shape = (1,) * (x.ndim - 3) + (-1, 1, 1)
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalised = (x - mean) / (var + self.eps).sqrt()
        scale = self.weight.reshape(param_shape)
        shift = self.bias.reshape(param_shape)
        return normalised * scale + shift


class LayerNorm(Module):
    """Layer normalisation over the last dimension (transformer convention)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        # A >1-D weight is a world-batched replica view (world, D); reshape it
        # to (world, 1, ..., 1, D) so the world axes align instead of
        # broadcasting against a sample axis.
        batched = self.weight.ndim > 1
        if batched:
            param_shape = (
                (self.weight.shape[0],) + (1,) * (x.ndim - 2) + (self.normalized_shape,)
            )
        else:
            param_shape = self.weight.shape
        if x.dtype == np.float32:
            # Same fused fast path as BatchNorm2d (float64 stays composite).
            return F.fused_norm(
                x, self.weight, self.bias, axes=(x.ndim - 1,), eps=self.eps,
                param_shape=param_shape,
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalised = (x - mean) / (var + self.eps).sqrt()
        if batched:
            return normalised * self.weight.reshape(param_shape) + self.bias.reshape(param_shape)
        return normalised * self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension.

    Under world-batched execution (see :func:`repro.nn.batched.active_world`)
    the leading world axis is bookkeeping, not data, so flattening starts one
    axis later.
    """

    def forward(self, x: Tensor) -> Tensor:
        start = 2 if active_world() is not None else 1
        return x.flatten(start_dim=start)


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling to a square spatial output."""

    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class MultiHeadAttention(Module):
    """Multi-head self-attention as used by the ViT encoder blocks."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.qkv = Linear(embed_dim, 3 * embed_dim, rng=rng)
        self.proj = Linear(embed_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # Python-float scale: keeps float32 activations from being promoted
        # to float64 by a numpy scalar under NEP 50.
        scale = 1.0 / float(np.sqrt(self.head_dim))
        if x.ndim == 4:
            # World-batched tokens (world, B, T, D): same per-slice attention
            # GEMMs with the world axis carried as an extra batch axis.
            world, batch, tokens, dim = x.shape
            qkv = self.qkv(x)  # (W, B, T, 3D)
            qkv = qkv.reshape(world, batch, tokens, 3, self.num_heads, self.head_dim)
            qkv = qkv.transpose(3, 0, 1, 4, 2, 5)  # (3, W, B, H, T, hd)
            q, k, v = qkv[0], qkv[1], qkv[2]
            attn = q.matmul(k.swapaxes(-1, -2)) * scale  # (W, B, H, T, T)
            attn = attn.softmax(axis=-1)
            context = attn.matmul(v)  # (W, B, H, T, hd)
            context = context.transpose(0, 1, 3, 2, 4).reshape(world, batch, tokens, dim)
            return self.proj(context)
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        attn = q.matmul(k.swapaxes(-1, -2)) * scale  # (B, H, T, T)
        attn = attn.softmax(axis=-1)
        context = attn.matmul(v)  # (B, H, T, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, dim)
        return self.proj(context)
