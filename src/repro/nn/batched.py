"""World-batched replica execution for the simulated data-parallel step.

The DDP simulator trains ``world_size`` replicas that share one set of
parameter arrays.  Looping Python over the ranks costs one full
forward/backward per rank; this module lets a *single* batched
forward/backward evaluate every rank at once while keeping the per-rank
float64 numerics bit-identical to the loop:

* :func:`replica_views` temporarily swaps every parameter attribute for a
  zero-copy broadcast **view** of shape ``(world, *param.shape)`` (stride 0
  along the world axis — no data is duplicated).  A batched input with a
  leading ``world`` axis then flows through the unchanged model code; because
  the views carry the world axis, :func:`repro.tensorlib.tensor._unbroadcast`
  stops summing *at* that axis and each view's ``.grad`` comes back as the
  per-rank gradient stack ``(world, *param.shape)`` — exactly the layout the
  gradient arena stores.
* :func:`active_world` is the thread-local-style context parameter-less layers
  (``Flatten``, model-level reshapes) consult to know how many leading axes
  are batch bookkeeping rather than data.

The views are installed with ``object.__setattr__`` so the module's
``_parameters`` registry (and therefore ``named_parameters`` order, bucketing
and pruning-mask keys) is untouched, and are always restored on exit.

Bit-identity contract: contractions keep ``world`` as a batch axis (numpy
dispatches the same per-slice GEMMs as the loop) and reductions over
non-world axes reduce each world slice independently, so every float64
gradient equals its looped counterpart bit-for-bit.  The one exception is
dropout (a single batched RNG draw); frozen golden workloads disable it.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensorlib import Tensor

_ACTIVE_WORLD: Optional[int] = None


def active_world() -> Optional[int]:
    """The world size of the batched execution in flight, or ``None``.

    Parameter-less layers use this to tell a batched ``(world, N, ...)``
    activation apart from a plain ``(N, ...)`` one when the rank alone is
    ambiguous.
    """
    return _ACTIVE_WORLD


@contextlib.contextmanager
def world_batched(world_size: int) -> Iterator[int]:
    """Mark a region as executing all ``world_size`` replicas at once."""
    global _ACTIVE_WORLD
    previous = _ACTIVE_WORLD
    _ACTIVE_WORLD = int(world_size)
    try:
        yield _ACTIVE_WORLD
    finally:
        _ACTIVE_WORLD = previous


def _make_view(param: Parameter, world_size: int, name: str) -> Tensor:
    # Construct without Tensor.__init__ so the stride-0 broadcast is preserved
    # verbatim (no dtype coercion copy): the view must alias the parameter's
    # storage for the whole point — zero-copy replicas — to hold.
    view = Tensor.__new__(Tensor)
    view.data = np.broadcast_to(param.data, (world_size,) + param.data.shape)
    view.grad = None
    view.requires_grad = param.requires_grad
    view._backward = None
    view._parents = ()
    view.name = name
    return view


@contextlib.contextmanager
def replica_views(model: Module, world_size: int) -> Iterator[Dict[str, Tensor]]:
    """Swap every parameter for a ``(world, *shape)`` broadcast view.

    Yields ``{dotted_name: view}`` (same names and order as
    ``model.named_parameters()``).  After a backward pass each view's
    ``.grad`` is the stacked per-rank gradient ``(world, *param.shape)``;
    the underlying parameters themselves accumulate nothing.  Attributes are
    restored on exit even if the forward/backward raises.
    """
    views: Dict[str, Tensor] = {}
    installed: List[Tuple[Module, str, Parameter]] = []
    try:
        for prefix, module in model.named_modules():
            for local, param in module._parameters.items():
                full = local if prefix == "" else f"{prefix}.{local}"
                view = _make_view(param, world_size, full)
                views[full] = view
                installed.append((module, local, param))
                object.__setattr__(module, local, view)
        with world_batched(world_size):
            yield views
    finally:
        for module, local, param in installed:
            object.__setattr__(module, local, param)
