"""Configuration for the PacTrain worker algorithm (Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PacTrainConfig:
    """Hyper-parameters of the PacTrain training procedure.

    Attributes
    ----------
    pruning_ratio:
        Fraction of prunable weights removed before distributed training
        starts.  The paper uses 0.5 by default and sweeps 0.0–0.99 in Fig. 6.
    pruning_method:
        ``"magnitude"`` (weight-magnitude criterion) or ``"grasp"`` (Eq. (4)
        gradient-flow criterion).
    pruning_scope:
        ``"global"`` or ``"layer"`` thresholding for magnitude pruning.
    stability_threshold:
        Consecutive unchanged iterations before the Mask Tracker declares a
        bucket's sparsity pattern stable.
    min_sparsity:
        Minimum gradient sparsity required before compact synchronisation is
        worthwhile (denser buckets keep using full all-reduce).
    quantize:
        Apply TernGrad quantisation on top of the compacted gradients (§III.D).
    gse_every_iteration:
        Re-apply Gradient Sparsity Enforcement after every backward pass; the
        paper's Eq. (2).  Disabling this is only useful for ablations.
    reapply_weight_mask:
        Re-zero pruned weights after every optimiser step.  With exact GSE this
        is a no-op, but it guards against optimiser-side regrowth (momentum,
        weight decay) and is cheap.
    warmup_iterations:
        Number of initial iterations that always use full synchronisation,
        regardless of mask stability (lets the optimiser settle after pruning).
    seed:
        Seed for the stochastic quantiser.
    """

    pruning_ratio: float = 0.5
    pruning_method: str = "magnitude"
    pruning_scope: str = "global"
    stability_threshold: int = 3
    min_sparsity: float = 0.05
    quantize: bool = False
    gse_every_iteration: bool = True
    reapply_weight_mask: bool = True
    warmup_iterations: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.pruning_ratio < 1.0:
            raise ValueError("pruning_ratio must be in [0, 1)")
        if self.pruning_method not in ("magnitude", "grasp"):
            raise ValueError("pruning_method must be 'magnitude' or 'grasp'")
        if self.pruning_scope not in ("global", "layer"):
            raise ValueError("pruning_scope must be 'global' or 'layer'")
        if self.stability_threshold < 1:
            raise ValueError("stability_threshold must be >= 1")
        if not 0.0 <= self.min_sparsity < 1.0:
            raise ValueError("min_sparsity must be in [0, 1)")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
