"""The PacTrain adaptive sparse gradient compressor (Algorithm 1, lines 6–12).

Per gradient bucket and iteration:

1. the Mask Tracker ingests the union of the ranks' non-zero patterns;
2. **unstable pattern** → fall back to a full fp32 all-reduce (correctness
   first, exactly as Algorithm 1 line 12 prescribes);
3. **stable pattern** → the :class:`~repro.compression.codec.stages.MaskCompact`
   stage packs the non-masked coordinates of every rank into a short dense
   tensor (Fig. 2's "masked assignment"), optionally composed with a
   :class:`~repro.compression.codec.stages.Ternarize` stage (§III.D), and the
   codec driver all-reduces the compact payloads.

Since the codec refactor PacTrain is no longer a hand-rolled special case: it
is a :class:`~repro.compression.base.CodecCompressor` that *selects a
pipeline per bucket* — ``Identity`` while unstable, ``MaskCompact`` (or
``MaskCompact + Ternarize``) once stable.  Because the packing order is
derived from the shared mask, the compact payloads are element-wise summable —
this is what keeps the scheme compatible with the all-reduce primitive while
sending only ``density × numel`` values.  With quantisation disabled the
scheme is lossless with respect to the masked gradient.

A small one-time cost is charged whenever a bucket's mask changes: the bitmask
itself (a packed :class:`~repro.compression.codec.payloads.BitmaskPayload`,
one bit per coordinate) is broadcast so all workers provably agree on the
packing order before compact mode is used.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import CodecCompressor
from repro.compression.codec import (
    BitmaskPayload,
    Identity,
    MaskCompact,
    Pipeline,
    Ternarize,
)
from repro.ddp.bucket import GradBucket
from repro.pactrain.mask_tracker import MaskTracker


class PacTrainCompressor(CodecCompressor):
    """Adaptive mask-aware sparse compression, all-reduce compatible."""

    def __init__(
        self,
        stability_threshold: int = 3,
        min_sparsity: float = 0.05,
        quantize: bool = False,
        seed: int = 0,
        mask_tracker: Optional[MaskTracker] = None,
        warmup_iterations: int = 0,
    ) -> None:
        if warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        self.tracker = mask_tracker or MaskTracker(
            stability_threshold=stability_threshold, min_sparsity=min_sparsity
        )
        self.quantize = quantize
        self.seed = seed
        #: Iterations that always use full synchronisation, regardless of mask
        #: stability (lets the optimiser settle right after pruning).
        self.warmup_iterations = warmup_iterations

        self._compact = MaskCompact()
        compact_stages = [self._compact]
        if quantize:
            compact_stages.append(Ternarize(seed=seed))
        self._compact_pipeline = Pipeline(compact_stages)
        self._full_pipeline = Pipeline([Identity()])
        super().__init__(
            self._compact_pipeline,
            name="pactrain-terngrad" if quantize else "pactrain",
        )
        # The fallback pipeline is also all-reduce compatible, and the scheme
        # is lossless w.r.t. the masked gradient when quantisation is off.
        self.allreduce_compatible = True
        self.lossless = not quantize

        # Per-bucket record of the last mask for which the bitmask sync cost
        # was charged, so the cost is only paid when the mask actually changes.
        self._synced_masks: Dict[int, np.ndarray] = {}
        # Counters surfaced in benchmark output.
        self.compact_iterations = 0
        self.full_iterations = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        super().reset()
        self._full_pipeline.reset()
        self.tracker.reset()
        self._synced_masks.clear()
        self.compact_iterations = 0
        self.full_iterations = 0

    # ------------------------------------------------------------------ #
    def _pipeline_for(self, bucket: GradBucket, group: ProcessGroup, iteration: int) -> Pipeline:
        """Algorithm 1's switch: full sync while unstable, compact once stable."""
        state = self.tracker.update_from_rank_gradients(bucket.index, bucket.buffers)

        if iteration < self.warmup_iterations or not state.stable:
            self.full_iterations += 1
            return self._full_pipeline

        mask = state.mask
        self._maybe_sync_bitmask(bucket, group, mask)
        self._compact.set_mask(bucket.index, mask)
        self.compact_iterations += 1
        return self._compact_pipeline

    # ------------------------------------------------------------------ #
    def _maybe_sync_bitmask(self, bucket: GradBucket, group: ProcessGroup, mask: np.ndarray) -> None:
        """Charge the bitmask broadcast whenever a bucket's stable mask changes."""
        previous = self._synced_masks.get(bucket.index)
        if previous is not None and previous.shape == mask.shape and np.array_equal(previous, mask):
            return
        group.broadcast(BitmaskPayload.from_mask(mask))
        self._synced_masks[bucket.index] = mask.copy()
        self.stats.extra["bitmask_syncs"] = self.stats.extra.get("bitmask_syncs", 0.0) + 1.0

    # ------------------------------------------------------------------ #
    @property
    def compact_fraction(self) -> float:
        """Fraction of bucket synchronisations that used the compact path."""
        total = self.compact_iterations + self.full_iterations
        return self.compact_iterations / total if total else 0.0
