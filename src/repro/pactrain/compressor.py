"""The PacTrain adaptive sparse gradient compressor (Algorithm 1, lines 6–12).

Per gradient bucket and iteration:

1. the Mask Tracker ingests the union of the ranks' non-zero patterns;
2. **unstable pattern** → fall back to a full fp32 all-reduce (correctness
   first, exactly as Algorithm 1 line 12 prescribes);
3. **stable pattern** → every rank packs the non-masked coordinates of its
   flat gradient into a short dense tensor (Fig. 2's "masked assignment"),
   the dense tensors are aggregated with a plain all-reduce (optionally after
   TernGrad quantisation, §III.D), and the result is scattered back into the
   full-size gradient.

Because the packing order is the same on every rank (it is derived from the
shared mask), the dense tensors are element-wise summable — this is what keeps
the scheme compatible with the all-reduce primitive while sending only
``density × numel`` values.  With quantisation disabled the scheme is lossless
with respect to the masked gradient.

A small one-time cost is charged whenever a bucket's mask changes: the bitmask
itself (1 bit per coordinate) is broadcast so all workers provably agree on the
packing order before compact mode is used.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES, TERNARY_BYTES
from repro.compression.terngrad import ternarize
from repro.ddp.bucket import GradBucket
from repro.pactrain.mask_tracker import MaskTracker

BITMASK_BYTES_PER_ELEMENT = 1.0 / 8.0


class PacTrainCompressor(Compressor):
    """Adaptive mask-aware sparse compression, all-reduce compatible."""

    allreduce_compatible = True
    #: Lossless w.r.t. the masked gradient when quantisation is disabled.
    lossless = False

    def __init__(
        self,
        stability_threshold: int = 3,
        min_sparsity: float = 0.05,
        quantize: bool = False,
        seed: int = 0,
        mask_tracker: Optional[MaskTracker] = None,
        warmup_iterations: int = 0,
    ) -> None:
        super().__init__()
        if warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        self.tracker = mask_tracker or MaskTracker(
            stability_threshold=stability_threshold, min_sparsity=min_sparsity
        )
        self.quantize = quantize
        self.seed = seed
        #: Iterations that always use full synchronisation, regardless of mask
        #: stability (lets the optimiser settle right after pruning).
        self.warmup_iterations = warmup_iterations
        self._rng = np.random.default_rng(seed)
        self.name = "pactrain-terngrad" if quantize else "pactrain"
        self.lossless = not quantize
        # Per-bucket record of the last mask for which the bitmask sync cost
        # was charged, so the cost is only paid when the mask actually changes.
        self._synced_masks: Dict[int, np.ndarray] = {}
        # Counters surfaced in benchmark output.
        self.compact_iterations = 0
        self.full_iterations = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        super().reset()
        self.tracker.reset()
        self._synced_masks.clear()
        self._rng = np.random.default_rng(self.seed)
        self.compact_iterations = 0
        self.full_iterations = 0

    # ------------------------------------------------------------------ #
    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        state = self.tracker.update_from_rank_gradients(bucket.index, bucket.buffers)

        if iteration < self.warmup_iterations or not state.stable:
            self.full_iterations += 1
            result = group.all_reduce(bucket.buffers, average=True, element_bytes=FP32_BYTES)
            self._record(bucket, FP32_BYTES)
            return result

        mask = state.mask
        self._maybe_sync_bitmask(bucket, group, mask)

        # Masked assignment (Fig. 2): pack the non-zero coordinates of every
        # rank into a dense low-dimensional tensor, in shared mask order.
        compact = [flat[mask] for flat in bucket.buffers]
        payload_elements = int(mask.sum())

        if self.quantize and payload_elements > 0:
            # TernGrad on the compacted tensors (§III.D): clip outliers (as the
            # TernGrad paper recommends) so the shared scaler is not dominated
            # by a single coordinate, agree on the scaler, then all-reduce the
            # ternary values at ~2 bits/element.
            compact = [self._clip(c) for c in compact]
            scalers = [np.array([np.max(np.abs(c))]) if c.size else np.array([0.0]) for c in compact]
            group.all_reduce(scalers, average=False, element_bytes=FP32_BYTES)
            shared_scaler = float(max(float(s[0]) for s in scalers))
            compact = [ternarize(c, scaler=shared_scaler, rng=self._rng) for c in compact]
            wire_bytes = TERNARY_BYTES
        else:
            wire_bytes = FP32_BYTES

        if payload_elements > 0:
            reduced = group.all_reduce(compact, average=True, element_bytes=wire_bytes)
        else:
            reduced = np.zeros(0, dtype=np.float64)

        aggregated = np.zeros(bucket.numel, dtype=np.float64)
        aggregated[mask] = reduced

        self.compact_iterations += 1
        self._record(bucket, wire_bytes, payload_elements=payload_elements)
        return aggregated

    # ------------------------------------------------------------------ #
    @staticmethod
    def _clip(grad: np.ndarray, sigma: float = 2.5) -> np.ndarray:
        """Clip to ``±sigma`` standard deviations before ternary quantisation."""
        if grad.size == 0:
            return grad
        std = float(np.std(grad))
        if std == 0.0:
            return grad
        bound = sigma * std
        return np.clip(grad, -bound, bound)

    # ------------------------------------------------------------------ #
    def _maybe_sync_bitmask(self, bucket: GradBucket, group: ProcessGroup, mask: np.ndarray) -> None:
        """Charge the bitmask broadcast whenever a bucket's stable mask changes."""
        previous = self._synced_masks.get(bucket.index)
        if previous is not None and previous.shape == mask.shape and np.array_equal(previous, mask):
            return
        group.broadcast(mask.astype(np.uint8), element_bytes=BITMASK_BYTES_PER_ELEMENT)
        self._synced_masks[bucket.index] = mask.copy()
        self.stats.extra["bitmask_syncs"] = self.stats.extra.get("bitmask_syncs", 0.0) + 1.0

    # ------------------------------------------------------------------ #
    @property
    def compact_fraction(self) -> float:
        """Fraction of bucket synchronisations that used the compact path."""
        total = self.compact_iterations + self.full_iterations
        return self.compact_iterations / total if total else 0.0
