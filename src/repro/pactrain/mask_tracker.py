"""Mask Tracker.

PyTorch DDP (and our simulator of it, :mod:`repro.ddp`) exposes gradients to
communication hooks only as flat 1-D bucket tensors with parameter names and
ordering erased.  PacTrain therefore cannot simply look up the pruning mask by
parameter name inside the hook; instead, the Mask Tracker recovers the sparsity
pattern *from the flat gradient itself* and monitors it across iterations:

* each iteration, the set of non-zero coordinates of the bucket is recorded;
* if the set is identical to the previous iteration's, a stability counter is
  incremented, otherwise it resets;
* once the counter reaches ``stability_threshold`` the pattern is declared
  **stable** and the compressor may switch from full synchronisation to
  compact sparse synchronisation (Algorithm 1, lines 7–12).

Because GSE pins the gradient zero-pattern to the (identical-across-workers)
weight zero-pattern, the tracked mask converges quickly and is the same on all
ranks, which is what makes the compact representation exchangeable with a
plain all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass
class MaskState:
    """Tracker verdict for one bucket at one iteration."""

    mask: np.ndarray              # boolean, True = coordinate may be non-zero (must be sent)
    stable: bool                  # pattern unchanged for >= stability_threshold iterations
    consecutive_stable: int       # how many consecutive iterations the pattern has held
    changed: bool                 # whether the pattern differs from the previous iteration
    density: float                # fraction of coordinates that are non-zero

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density


class MaskTracker:
    """Track per-bucket gradient sparsity patterns across iterations.

    Parameters
    ----------
    stability_threshold:
        Number of consecutive iterations the pattern must stay identical before
        it is considered stable.  The paper leaves the constant open; 2–5 works
        well and is explored by the ablation benchmark.
    min_sparsity:
        Patterns denser than ``1 - min_sparsity`` are never declared stable:
        compacting a nearly-dense gradient saves nothing but adds bookkeeping,
        so the tracker keeps the full all-reduce path in that regime.
    """

    def __init__(self, stability_threshold: int = 3, min_sparsity: float = 0.05) -> None:
        if stability_threshold < 1:
            raise ValueError("stability_threshold must be >= 1")
        if not 0.0 <= min_sparsity < 1.0:
            raise ValueError("min_sparsity must be in [0, 1)")
        self.stability_threshold = stability_threshold
        self.min_sparsity = min_sparsity
        self._previous: Dict[int, np.ndarray] = {}
        self._streak: Dict[int, int] = {}
        self._updates: int = 0

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #
    def update(self, bucket_index: int, nonzero_pattern: np.ndarray) -> MaskState:
        """Feed this iteration's non-zero pattern for one bucket.

        ``nonzero_pattern`` is a boolean array (True where the gradient is
        non-zero); use :meth:`update_from_gradient` to derive it from a flat
        gradient directly.

        Stability is judged *conservatively*: the tracker maintains a keep-mask
        and counts an iteration as consistent when the observed non-zeros are a
        subset of that mask (a coordinate that happens to be exactly zero this
        iteration — a dead ReLU, an all-zero mini-batch — does not reset the
        streak, because compacting with a superset mask is still lossless).
        Any non-zero appearing *outside* the tracked mask means the sparsity
        pattern genuinely changed: the mask is widened to include it and the
        streak restarts, which sends the compressor back to full
        synchronisation exactly as Algorithm 1 line 12 requires.
        """
        pattern = np.asarray(nonzero_pattern, dtype=bool).reshape(-1)
        self._updates += 1

        previous = self._previous.get(bucket_index)
        if previous is None or previous.shape != pattern.shape:
            tracked = pattern
            streak = 1
            changed = previous is not None
        elif bool(np.any(pattern & ~previous)):
            # New coordinates became active: the pattern changed for real.
            tracked = previous | pattern
            streak = 1
            changed = True
        else:
            tracked = previous
            streak = self._streak.get(bucket_index, 0) + 1
            changed = False
        self._previous[bucket_index] = tracked
        self._streak[bucket_index] = streak

        density = float(tracked.mean()) if tracked.size else 0.0
        sparse_enough = (1.0 - density) >= self.min_sparsity
        stable = streak >= self.stability_threshold and sparse_enough
        return MaskState(
            mask=tracked,
            stable=stable,
            consecutive_stable=streak,
            changed=changed,
            density=density,
        )

    def update_from_gradient(self, bucket_index: int, flat_gradient: np.ndarray, atol: float = 0.0) -> MaskState:
        """Derive the non-zero pattern from a flat gradient and update."""
        pattern = np.abs(np.asarray(flat_gradient).reshape(-1)) > atol
        return self.update(bucket_index, pattern)

    def update_from_rank_gradients(self, bucket_index: int, flat_gradients, atol: float = 0.0) -> MaskState:
        """Union the non-zero patterns of all ranks' gradients and update.

        GSE makes per-rank patterns identical in theory; taking the union makes
        the compressor robust to any rank-local deviation (e.g. a coordinate
        that happens to be exactly zero on one rank), preserving losslessness.
        """
        union: Optional[np.ndarray] = None
        for flat in flat_gradients:
            pattern = np.abs(np.asarray(flat).reshape(-1)) > atol
            union = pattern if union is None else (union | pattern)
        if union is None:
            raise ValueError("update_from_rank_gradients needs at least one gradient")
        return self.update(bucket_index, union)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current_mask(self, bucket_index: int) -> Optional[np.ndarray]:
        return self._previous.get(bucket_index)

    def streak(self, bucket_index: int) -> int:
        return self._streak.get(bucket_index, 0)

    def is_stable(self, bucket_index: int) -> bool:
        streak = self._streak.get(bucket_index, 0)
        mask = self._previous.get(bucket_index)
        if mask is None or streak < self.stability_threshold:
            return False
        density = float(mask.mean()) if mask.size else 0.0
        return (1.0 - density) >= self.min_sparsity

    def reset(self, bucket_index: Optional[int] = None) -> None:
        """Forget tracked state, for one bucket or all of them."""
        if bucket_index is None:
            self._previous.clear()
            self._streak.clear()
            self._updates = 0
        else:
            self._previous.pop(bucket_index, None)
            self._streak.pop(bucket_index, None)

    @property
    def tracked_buckets(self) -> int:
        return len(self._previous)

    @property
    def total_updates(self) -> int:
        return self._updates
