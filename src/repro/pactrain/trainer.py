"""PacTrain worker algorithm (Algorithm 1) as a ready-to-run trainer.

:class:`PacTrainTrainer` is the user-facing entry point of the reproduction:
give it a model name (or instance), a dataset and a cluster description and it
executes Algorithm 1 — prune the (pre-trained) model, apply Gradient Sparsity
Enforcement every iteration, track the sparsity pattern of the flattened DDP
buckets, and synchronise either compactly (stable mask) or fully (unstable
mask) — while accounting simulated time so Time-To-Accuracy can be reported.

The trainer is a thin convenience layer over
:func:`repro.simulation.experiment.run_experiment`; benchmarks that sweep many
methods use the experiment driver directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.pactrain.config import PacTrainConfig
from repro.simulation.cluster import ClusterSpec
from repro.simulation.experiment import (
    ExperimentConfig,
    ExperimentResult,
    MethodSpec,
    run_experiment,
)


@dataclass
class PacTrainTrainer:
    """Run PacTrain end-to-end on a named workload.

    Example
    -------
    >>> from repro.pactrain import PacTrainTrainer, PacTrainConfig
    >>> from repro.simulation import ClusterSpec
    >>> trainer = PacTrainTrainer(
    ...     model="resnet18",
    ...     dataset="cifar10",
    ...     cluster=ClusterSpec(world_size=4, bandwidth="100Mbps"),
    ...     config=PacTrainConfig(pruning_ratio=0.5),
    ...     epochs=3,
    ... )
    >>> result = trainer.run()
    >>> result.final_accuracy > 0.1
    True
    """

    model: str = "resnet18"
    dataset: str = "cifar10"
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    config: PacTrainConfig = field(default_factory=PacTrainConfig)
    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    target_accuracy: Optional[float] = None
    dataset_samples: int = 512
    image_size: int = 8
    seed: int = 0

    # ------------------------------------------------------------------ #
    def method_spec(self) -> MethodSpec:
        """The :class:`MethodSpec` equivalent of this trainer's configuration."""
        return MethodSpec(
            name="pactrain-terngrad" if self.config.quantize else "pactrain",
            compressor="pactrain",
            pruning_ratio=self.config.pruning_ratio,
            pruning_method=self.config.pruning_method,
            gse=self.config.gse_every_iteration,
            quantize=self.config.quantize,
            stability_threshold=self.config.stability_threshold,
            min_sparsity=self.config.min_sparsity,
            warmup_iterations=self.config.warmup_iterations,
        )

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            model=self.model,
            dataset=self.dataset,
            cluster=self.cluster,
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            momentum=self.momentum,
            target_accuracy=self.target_accuracy,
            dataset_samples=self.dataset_samples,
            image_size=self.image_size,
            seed=self.seed,
        )

    # ------------------------------------------------------------------ #
    def run(self) -> ExperimentResult:
        """Execute Algorithm 1 and return the experiment result."""
        return run_experiment(self.experiment_config(), self.method_spec())

    def run_baseline(self, compressor: str = "allreduce") -> ExperimentResult:
        """Train the same workload without pruning using a baseline compressor.

        Useful for quick speedup comparisons::

            pac = trainer.run()
            base = trainer.run_baseline()
            speedup = base.tta_or_total() / pac.tta_or_total()
        """
        baseline = MethodSpec(name=compressor, compressor=compressor)
        return run_experiment(self.experiment_config(), baseline)

    def summary(self, result: ExperimentResult) -> Dict[str, float]:
        """Compact numeric summary of a finished run (for printing/logging)."""
        return {
            "final_accuracy": result.final_accuracy,
            "best_accuracy": result.best_accuracy,
            "simulated_time_s": result.simulated_time,
            "comm_time_s": result.comm_time,
            "compute_time_s": result.compute_time,
            "compression_ratio": result.compression_ratio,
            "weight_sparsity": result.weight_sparsity,
            "tta_s": result.tta if result.tta is not None else float("nan"),
        }
