"""PacTrain: pruning-aware adaptive sparse gradient compression.

This package implements the paper's primary contribution on top of the
substrates in :mod:`repro.nn`, :mod:`repro.ddp`, :mod:`repro.comm`,
:mod:`repro.compression` and :mod:`repro.pruning`:

* :class:`MaskTracker` — recovers and monitors the sparsity pattern of the
  *flattened* DDP gradient buckets (whose parameter names have been erased),
  and declares the pattern stable once it has not changed for a configurable
  number of iterations;
* :class:`PacTrainCompressor` — the adaptive compression scheme of
  Algorithm 1: while the mask is unstable, gradients are synchronised with a
  full fp32 all-reduce; once stable, only the non-masked coordinates are packed
  into a short dense tensor and all-reduced (optionally ternary-quantised),
  which is lossless with respect to the masked gradient and stays all-reduce
  compatible;
* :class:`PacTrainConfig` / :class:`PacTrainTrainer` — the worker algorithm
  (prune → GSE every iteration → mask tracking → adaptive synchronisation)
  packaged as a ready-to-run trainer.
"""

from repro.pactrain.mask_tracker import MaskTracker, MaskState
from repro.pactrain.compressor import PacTrainCompressor
from repro.pactrain.config import PacTrainConfig
from repro.pactrain.trainer import PacTrainTrainer

__all__ = [
    "MaskTracker",
    "MaskState",
    "PacTrainCompressor",
    "PacTrainConfig",
    "PacTrainTrainer",
]
