"""Metrics used by the paper's evaluation: TTA, NMSE, compression/throughput."""

from repro.metrics.tta import AccuracyTrace, time_to_accuracy, relative_tta, speedup_table
from repro.metrics.nmse import nmse, compression_error_report
from repro.metrics.throughput import (
    bytes_saved,
    compression_summary,
    effective_throughput,
    iteration_breakdown,
)

__all__ = [
    "AccuracyTrace",
    "time_to_accuracy",
    "relative_tta",
    "speedup_table",
    "nmse",
    "compression_error_report",
    "bytes_saved",
    "compression_summary",
    "effective_throughput",
    "iteration_breakdown",
]
