"""Normalised mean squared error (NMSE) of compressed gradients.

The paper (§III.D) argues that determining the pruning mask by weight ranking
reduces the compression scheme's sensitivity to NMSE,
``NMSE(x, x_hat) = ||x - x_hat||^2 / ||x||^2``.  These helpers quantify the
aggregation error each compressor introduces relative to the exact average —
used by unit tests (PacTrain without quantisation must be exact on masked
gradients) and by the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def nmse(reference: np.ndarray, approximation: np.ndarray) -> float:
    """``||x - x_hat||^2 / ||x||^2`` (0 for a perfect reconstruction)."""
    reference = np.asarray(reference, dtype=np.float64).reshape(-1)
    approximation = np.asarray(approximation, dtype=np.float64).reshape(-1)
    if reference.shape != approximation.shape:
        raise ValueError("reference and approximation must have the same number of elements")
    denom = float(np.sum(reference ** 2))
    if denom == 0.0:
        return 0.0 if float(np.sum(approximation ** 2)) == 0.0 else float("inf")
    return float(np.sum((reference - approximation) ** 2)) / denom


def compression_error_report(
    per_rank_gradients: Sequence[np.ndarray],
    aggregated: np.ndarray,
) -> Dict[str, float]:
    """NMSE and cosine similarity of an aggregated gradient vs the exact average."""
    exact = np.mean(np.stack([np.asarray(g, dtype=np.float64) for g in per_rank_gradients]), axis=0)
    error = nmse(exact, aggregated)
    exact_flat = exact.reshape(-1)
    approx_flat = np.asarray(aggregated, dtype=np.float64).reshape(-1)
    denom = np.linalg.norm(exact_flat) * np.linalg.norm(approx_flat)
    cosine = float(np.dot(exact_flat, approx_flat) / denom) if denom > 0 else 1.0
    return {"nmse": error, "cosine_similarity": cosine}
