"""Communication-volume and throughput accounting helpers."""

from __future__ import annotations

from typing import Dict

from repro.compression.base import Compressor


def bytes_saved(compressor: Compressor) -> float:
    """Raw bytes minus wire bytes accumulated by a compressor."""
    return max(0.0, compressor.stats.raw_bytes - compressor.stats.wire_bytes)


def compression_summary(compressor: Compressor) -> Dict[str, float]:
    """Single-compressor accounting summary used by benchmark tables."""
    stats = compressor.stats
    return {
        "iterations": float(stats.iterations),
        "raw_bytes": stats.raw_bytes,
        "wire_bytes": stats.wire_bytes,
        "compression_ratio": stats.compression_ratio,
        "allreduce_calls": float(stats.allreduce_calls),
        "allgather_calls": float(stats.allgather_calls),
        "allreduce_compatible": 1.0 if compressor.allreduce_compatible else 0.0,
    }


def effective_throughput(samples: int, simulated_seconds: float) -> float:
    """Training throughput in samples per simulated second."""
    if simulated_seconds <= 0:
        raise ValueError("simulated_seconds must be positive")
    return samples / simulated_seconds


def iteration_breakdown(compute_time: float, comm_time: float) -> Dict[str, float]:
    """Fraction of iteration time spent computing vs communicating."""
    total = compute_time + comm_time
    if total <= 0:
        return {"compute_fraction": 0.0, "comm_fraction": 0.0, "total": 0.0}
    return {
        "compute_fraction": compute_time / total,
        "comm_fraction": comm_time / total,
        "total": total,
    }
