"""Time-To-Accuracy (TTA) metrics.

The paper's central metric: the simulated wall-clock time needed to reach a
target test accuracy.  :func:`relative_tta` and :func:`speedup_table` produce
the normalised numbers shown in Fig. 3 (relative TTA on a log scale, all
methods normalised to the native all-reduce baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class AccuracyTrace:
    """A monotone-time sequence of (time, accuracy) observations."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, accuracy: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError("accuracy trace times must be non-decreasing")
        self.points.append((float(time), float(accuracy)))

    def time_to_accuracy(self, target: float) -> Optional[float]:
        return time_to_accuracy(self.points, target)

    def final_accuracy(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def best_accuracy(self) -> float:
        return max((acc for _, acc in self.points), default=0.0)

    def __len__(self) -> int:
        return len(self.points)


def time_to_accuracy(points: Sequence[Tuple[float, float]], target: float) -> Optional[float]:
    """Earliest time at which accuracy reaches ``target`` (None if never)."""
    for time, accuracy in points:
        if accuracy >= target:
            return time
    return None


def relative_tta(
    method_tta: float,
    baseline_tta: float,
) -> float:
    """Method TTA divided by baseline TTA (``< 1`` means the method is faster)."""
    if baseline_tta <= 0:
        raise ValueError("baseline TTA must be positive")
    return method_tta / baseline_tta


def speedup_table(
    ttas: Dict[str, float],
    baseline: str = "all-reduce",
) -> Dict[str, float]:
    """Speedup of every method over the baseline (``> 1`` means faster).

    This is the number quoted in the paper's abstract ("1.25 to 8.72x").
    """
    if baseline not in ttas:
        raise KeyError(f"baseline {baseline!r} missing from TTA table {sorted(ttas)}")
    base = ttas[baseline]
    return {name: base / value if value > 0 else float("inf") for name, value in ttas.items()}
