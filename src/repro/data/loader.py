"""Mini-batch loading and per-rank data sharding.

``DistributedSampler`` reproduces the behaviour of
``torch.utils.data.DistributedSampler``: each of the ``world_size`` ranks sees
a disjoint, equally sized shard of the dataset per epoch, with shuffling driven
by an epoch-dependent seed that is identical across ranks so shards never
overlap.  This is the data-parallel substrate the paper's Eq. (1) assumes
(``D_i^t`` partitions).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class DistributedSampler:
    """Deterministic per-rank sampler over dataset indices."""

    def __init__(
        self,
        dataset_size: int,
        world_size: int,
        rank: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world_size {world_size}")
        self.dataset_size = dataset_size
        self.world_size = world_size
        self.rank = rank
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Change the shuffling seed; call once per epoch on every rank."""
        self.epoch = epoch

    def indices(self) -> np.ndarray:
        order = np.arange(self.dataset_size)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self.epoch)
            rng.shuffle(order)
        if self.drop_last:
            usable = (self.dataset_size // self.world_size) * self.world_size
            order = order[:usable]
        else:
            # Pad by wrapping so every rank gets the same number of samples.
            target = int(np.ceil(self.dataset_size / self.world_size)) * self.world_size
            if target > len(order):
                order = np.concatenate([order, order[: target - len(order)]])
        return order[self.rank :: self.world_size]

    def __len__(self) -> int:
        if self.drop_last:
            return self.dataset_size // self.world_size
        return int(np.ceil(self.dataset_size / self.world_size))


class DataLoader:
    """Iterate over a dataset in mini-batches of stacked numpy arrays."""

    def __init__(
        self,
        dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        sampler: Optional[DistributedSampler] = None,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.sampler = sampler
        self.seed = seed
        self.drop_last = drop_last
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self._epoch = epoch
        if self.sampler is not None:
            self.sampler.set_epoch(epoch)

    def _indices(self) -> np.ndarray:
        if self.sampler is not None:
            return self.sampler.indices()
        order = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            rng.shuffle(order)
        return order

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = self._indices()
        limit = len(indices)
        if self.drop_last:
            limit = (limit // self.batch_size) * self.batch_size
        for start in range(0, limit, self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            if len(batch_idx) == 0:
                continue
            images = np.stack([self.dataset[i][0] for i in batch_idx])
            labels = np.array([self.dataset[i][1] for i in batch_idx], dtype=np.int64)
            yield images, labels

    def __len__(self) -> int:
        count = len(self.sampler) if self.sampler is not None else len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return int(np.ceil(count / self.batch_size))


def train_test_split(dataset, test_fraction: float = 0.2, seed: int = 0):
    """Split a dataset into train / test subsets deterministically."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    split = int(len(dataset) * (1.0 - test_fraction))
    return dataset.subset(order[:split]), dataset.subset(order[split:])
