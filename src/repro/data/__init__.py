"""Dataset substrate.

The paper trains on CIFAR-10 and CIFAR-100.  Those datasets cannot be
downloaded in this offline environment, so :mod:`repro.data` provides
deterministic synthetic class-conditional image datasets with the same
interface a torchvision dataset would expose (length, indexing, per-class
labels), plus the ``DataLoader`` / ``DistributedSampler`` machinery that the
distributed data-parallel simulator uses to shard data across ranks.
"""

from repro.data.synthetic import (
    SyntheticImageClassification,
    synthetic_cifar10,
    synthetic_cifar100,
    make_dataset,
)
from repro.data.loader import DataLoader, DistributedSampler, train_test_split

__all__ = [
    "SyntheticImageClassification",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "make_dataset",
    "DataLoader",
    "DistributedSampler",
    "train_test_split",
]
