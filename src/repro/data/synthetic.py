"""Synthetic class-conditional image datasets standing in for CIFAR-10/100.

Design goals:

* **Learnable but not trivial.**  Each class has a random spatial "prototype"
  image; samples are the prototype plus per-sample Gaussian noise and a random
  global intensity shift.  Linear models reach moderate accuracy, deeper models
  reach higher accuracy, and accuracy improves over epochs — which is all the
  TTA experiments need.
* **Deterministic.**  The full dataset is generated from a seed, so every
  simulated rank (and every rerun of a benchmark) sees the same data.
* **Cheap.**  Images default to 8×8×3 so that an epoch over a few hundred
  samples takes well under a second on one CPU core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.tensorlib.dtypes import get_default_dtype


@dataclass
class DatasetSpec:
    """Configuration of a synthetic classification dataset."""

    num_classes: int
    num_samples: int
    image_size: int = 8
    channels: int = 3
    noise_std: float = 0.6
    seed: int = 0
    name: str = "synthetic"


class SyntheticImageClassification:
    """An in-memory, deterministic image classification dataset.

    Samples are ``(image, label)`` pairs where ``image`` is a
    ``(C, H, W)`` float array (roughly zero-mean, unit-ish variance) and
    ``label`` is an integer in ``[0, num_classes)``.
    """

    def __init__(self, spec: DatasetSpec) -> None:
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        shape = (spec.channels, spec.image_size, spec.image_size)

        # Class prototypes: smooth random patterns, distinct per class.
        prototypes = rng.standard_normal((spec.num_classes, *shape))
        # Low-pass the prototypes slightly so that convolutional models have
        # spatial structure to exploit.
        kernel = np.array([0.25, 0.5, 0.25])
        for axis in (1, 2):
            prototypes = _smooth_along_axis(prototypes, kernel, axis + 1)
        self.prototypes = prototypes * 1.5

        labels = rng.integers(0, spec.num_classes, size=spec.num_samples)
        noise = rng.standard_normal((spec.num_samples, *shape)) * spec.noise_std
        shift = rng.normal(0.0, 0.1, size=(spec.num_samples, 1, 1, 1))
        # Sample in float64 (deterministic across compute dtypes), store in the
        # process compute dtype so training batches need no per-step casts.
        self.images = (self.prototypes[labels] + noise + shift).astype(get_default_dtype())
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return self.spec.num_samples

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.spec.channels, self.spec.image_size, self.spec.image_size)

    def subset(self, indices: np.ndarray) -> "SyntheticImageClassification":
        """Return a view-like dataset restricted to ``indices`` (copies data)."""
        indices = np.asarray(indices, dtype=np.int64)
        new = object.__new__(SyntheticImageClassification)
        new.spec = DatasetSpec(
            num_classes=self.spec.num_classes,
            num_samples=len(indices),
            image_size=self.spec.image_size,
            channels=self.spec.channels,
            noise_std=self.spec.noise_std,
            seed=self.spec.seed,
            name=f"{self.spec.name}-subset",
        )
        new.prototypes = self.prototypes
        new.images = self.images[indices]
        new.labels = self.labels[indices]
        return new


def _smooth_along_axis(array: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """Apply a small 1-D smoothing kernel along ``axis`` with edge padding."""
    pad = len(kernel) // 2
    pad_width = [(0, 0)] * array.ndim
    pad_width[axis] = (pad, pad)
    padded = np.pad(array, pad_width, mode="edge")
    out = np.zeros_like(array)
    for offset, weight in enumerate(kernel):
        slicer = [slice(None)] * array.ndim
        slicer[axis] = slice(offset, offset + array.shape[axis])
        out += weight * padded[tuple(slicer)]
    return out


def synthetic_cifar10(
    num_samples: int = 512,
    image_size: int = 8,
    noise_std: float = 0.6,
    seed: int = 0,
) -> SyntheticImageClassification:
    """10-class synthetic dataset standing in for CIFAR-10."""
    return SyntheticImageClassification(
        DatasetSpec(
            num_classes=10,
            num_samples=num_samples,
            image_size=image_size,
            noise_std=noise_std,
            seed=seed,
            name="synthetic-cifar10",
        )
    )


def synthetic_cifar100(
    num_samples: int = 1024,
    image_size: int = 8,
    noise_std: float = 0.5,
    seed: int = 0,
) -> SyntheticImageClassification:
    """100-class synthetic dataset standing in for CIFAR-100."""
    return SyntheticImageClassification(
        DatasetSpec(
            num_classes=100,
            num_samples=num_samples,
            image_size=image_size,
            noise_std=noise_std,
            seed=seed,
            name="synthetic-cifar100",
        )
    )


_DATASET_FACTORIES = {
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
}


def make_dataset(name: str, **kwargs) -> SyntheticImageClassification:
    """Build a dataset by paper workload name (``cifar10`` / ``cifar100``)."""
    key = name.lower().replace("-", "")
    if key not in _DATASET_FACTORIES:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_DATASET_FACTORIES)}")
    return _DATASET_FACTORIES[key](**kwargs)
