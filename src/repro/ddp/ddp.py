"""The distributed data-parallel wrapper.

:class:`DistributedDataParallel` simulates synchronous data-parallel training
of ``world_size`` replicas on a single process:

1. every rank runs a real forward/backward pass on its own mini-batch (the
   replicas share one set of weights, which is mathematically identical to
   real DDP because every rank applies the same aggregated gradient);
2. per-rank gradients are packed into flat buckets (reverse parameter order,
   names erased — see :mod:`repro.ddp.bucket`);
3. the registered communication hook aggregates each bucket through the
   process group, which records modeled time and bytes;
4. the aggregated gradients are unpacked back into ``param.grad`` so a single
   optimiser step updates the shared weights.

The result of each step reports the loss, the modeled communication time and
the bytes each worker placed on the wire — the raw material for every TTA
figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import CollectiveEvent
from repro.comm.process_group import ProcessGroup
from repro.ddp.bucket import Bucket, GradBucket, build_buckets, DEFAULT_BUCKET_CAP_BYTES
from repro.ddp.hooks import CommHook, HookState, make_hook
from repro.nn.module import Module
from repro.tensorlib import Tensor


@dataclass
class StepResult:
    """Outcome of one synchronous training step."""

    loss: float
    per_rank_loss: List[float]
    comm_time: float
    comm_bytes_per_worker: float
    events: List[CollectiveEvent] = field(default_factory=list)
    per_bucket_numel: List[int] = field(default_factory=list)
    #: Modeled seconds of each bucket's collective(s), in bucket order — the
    #: per-bucket costs the event-driven engine schedules against backward
    #: compute.
    per_bucket_comm_time: List[float] = field(default_factory=list)


class DistributedDataParallel:
    """Synchronous data-parallel training of one model across simulated ranks.

    Parameters
    ----------
    model:
        The shared model replica (identical across ranks by construction).
    world_size:
        Number of simulated workers.
    process_group:
        Communication substrate; defaults to a zero-cost group (unit tests).
    bucket_cap_bytes:
        Gradient bucket capacity; PyTorch's 25 MiB default keeps small models
        in a single bucket, which matches how DDP behaves for them.
    comm_hook:
        ``None`` (native all-reduce), a compressor, or a hook callable.
    """

    def __init__(
        self,
        model: Module,
        world_size: int,
        process_group: Optional[ProcessGroup] = None,
        bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES,
        comm_hook: Optional[object] = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.model = model
        self.world_size = world_size
        self.process_group = process_group or ProcessGroup(world_size)
        if self.process_group.world_size != world_size:
            raise ValueError("process_group world_size does not match DDP world_size")
        self.buckets: List[Bucket] = build_buckets(model, bucket_cap_bytes)
        self._hook: CommHook = make_hook(comm_hook)
        self._hook_state = HookState(process_group=self.process_group)
        self._param_map = dict(model.named_parameters())

    # ------------------------------------------------------------------ #
    # Hook management
    # ------------------------------------------------------------------ #
    def register_comm_hook(self, hook_or_compressor: object) -> None:
        """Replace the communication hook (mirrors DDP's ``register_comm_hook``)."""
        self._hook = make_hook(hook_or_compressor)

    @property
    def hook_state(self) -> HookState:
        return self._hook_state

    # ------------------------------------------------------------------ #
    # Training step
    # ------------------------------------------------------------------ #
    def compute_local_gradients(
        self,
        batch: Tuple[np.ndarray, np.ndarray],
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Run forward/backward for one rank's batch and return its gradients."""
        images, labels = batch
        self.model.zero_grad()
        logits = self.model(Tensor(images))
        loss = loss_fn(logits, labels)
        loss.backward()
        grads = {
            name: param.grad.copy()
            for name, param in self._param_map.items()
            if param.grad is not None
        }
        return float(loss.item()), grads

    def train_step(
        self,
        per_rank_batches: Sequence[Tuple[np.ndarray, np.ndarray]],
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    ) -> StepResult:
        """One synchronous iteration: local backward on every rank, then sync.

        ``per_rank_batches`` must contain exactly ``world_size`` batches (one
        per rank, typically produced by a :class:`repro.data.DistributedSampler`).
        """
        if len(per_rank_batches) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank batches, got {len(per_rank_batches)}"
            )

        per_rank_losses: List[float] = []
        per_rank_grads: List[Dict[str, np.ndarray]] = []
        for batch in per_rank_batches:
            loss_value, grads = self.compute_local_gradients(batch, loss_fn)
            per_rank_losses.append(loss_value)
            per_rank_grads.append(grads)

        aggregated, bucket_events = self.synchronize_gradients_traced(per_rank_grads)
        self._write_back(aggregated)

        events = self.process_group.pop_events()
        comm_time = float(sum(e.time_seconds for e in events))
        comm_bytes = float(sum(e.bytes_per_worker for e in events))
        self._hook_state.iteration += 1
        return StepResult(
            loss=float(np.mean(per_rank_losses)),
            per_rank_loss=per_rank_losses,
            comm_time=comm_time,
            comm_bytes_per_worker=comm_bytes,
            events=events,
            per_bucket_numel=[b.numel for b in self.buckets],
            per_bucket_comm_time=[
                float(sum(e.time_seconds for e in per_bucket)) for per_bucket in bucket_events
            ],
        )

    # ------------------------------------------------------------------ #
    # Gradient synchronisation
    # ------------------------------------------------------------------ #
    def synchronize_gradients(
        self,
        per_rank_grads: Sequence[Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Bucket per-rank gradients, run the hook per bucket, unpack the result."""
        aggregated, _ = self.synchronize_gradients_traced(per_rank_grads)
        return aggregated

    def synchronize_gradients_traced(
        self,
        per_rank_grads: Sequence[Dict[str, np.ndarray]],
    ) -> Tuple[Dict[str, np.ndarray], List[List[CollectiveEvent]]]:
        """:meth:`synchronize_gradients`, also returning per-bucket events.

        The second element groups the process group's collective events by the
        bucket whose hook issued them (one — or, for adaptive compressors,
        several — per bucket), which is what the event-driven engine needs to
        schedule each bucket's collective against backward compute.  Events
        are *not* popped from the group's log; the caller still drains it once
        per iteration.
        """
        if len(per_rank_grads) != self.world_size:
            raise ValueError("need one gradient dict per rank")
        aggregated: Dict[str, np.ndarray] = {}
        bucket_events: List[List[CollectiveEvent]] = []
        last_index = len(self.buckets) - 1
        for bucket in self.buckets:
            flats = [bucket.flatten(grads) for grads in per_rank_grads]
            grad_bucket = GradBucket(bucket, flats, is_last=bucket.index == last_index)
            events_before = len(self.process_group.events)
            reduced = self._hook(self._hook_state, grad_bucket)
            bucket_events.append(list(self.process_group.events[events_before:]))
            reduced = np.asarray(reduced, dtype=np.float64).reshape(-1)
            if reduced.size != bucket.numel:
                raise ValueError(
                    f"hook returned {reduced.size} elements for bucket {bucket.index}, "
                    f"expected {bucket.numel}"
                )
            aggregated.update(bucket.unflatten(reduced))
        return aggregated, bucket_events

    def apply_aggregated_gradients(self, aggregated: Dict[str, np.ndarray]) -> None:
        """Public entry point for writing externally aggregated gradients back."""
        self._write_back(aggregated)

    def _write_back(self, aggregated: Dict[str, np.ndarray]) -> None:
        for name, grad in aggregated.items():
            param = self._param_map.get(name)
            if param is None:
                raise KeyError(f"aggregated gradient for unknown parameter {name!r}")
            param.grad = np.asarray(grad, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def gradient_numel(self) -> int:
        """Total number of gradient elements synchronised per iteration."""
        return sum(bucket.numel for bucket in self.buckets)

    def gradient_nbytes(self) -> int:
        """Uncompressed fp32 bytes synchronised per iteration."""
        return sum(bucket.nbytes for bucket in self.buckets)
