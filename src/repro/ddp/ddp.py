"""The distributed data-parallel wrapper.

:class:`DistributedDataParallel` simulates synchronous data-parallel training
of ``world_size`` replicas on a single process:

1. every rank runs a real forward/backward pass on its own mini-batch (the
   replicas share one set of weights, which is mathematically identical to
   real DDP because every rank applies the same aggregated gradient);
2. per-rank gradients are staged into a preallocated
   :class:`~repro.ddp.arena.GradientArena` — one reusable ``(world_size,
   numel)`` matrix per bucket (reverse parameter order, names erased — see
   :mod:`repro.ddp.bucket`) — with no per-step flatten buffers;
3. the registered communication hook aggregates each bucket through the
   process group, which records modeled time and bytes; the events each
   bucket's hook issued are drained from the group's log per step (the group
   keeps lifetime aggregates), so the log cannot grow with run length.
   Stateful compressors (error-feedback residuals, DGC momentum, PacTrain
   masks) own their per-bucket buffers — never views into the arena, whose
   rows are rewritten by every staging pass — so their state survives arena
   staging and bucket reuse across iterations;
4. the aggregated gradients are unpacked back into ``param.grad`` as views of
   the reduced buffer (no copies on the float64 or float32 path) so a single
   optimiser step updates the shared weights.

The result of each step reports the loss, the modeled communication time and
the bytes each worker placed on the wire — the raw material for every TTA
figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import CollectiveEvent
from repro.comm.process_group import ProcessGroup
from repro.ddp.arena import GradientArena
from repro.ddp.bucket import Bucket, GradBucket, build_buckets, DEFAULT_BUCKET_CAP_BYTES
from repro.obs.tracer import TRACER
from repro.ddp.hooks import CommHook, HookState, make_hook
from repro.nn.batched import replica_views
from repro.nn.module import Module
from repro.tensorlib import Tensor
from repro.tensorlib.dtypes import get_default_dtype


@dataclass
class StepResult:
    """Outcome of one synchronous training step."""

    loss: float
    per_rank_loss: List[float]
    comm_time: float
    comm_bytes_per_worker: float
    events: List[CollectiveEvent] = field(default_factory=list)
    per_bucket_numel: List[int] = field(default_factory=list)
    #: Modeled seconds of each bucket's collective(s), in bucket order — the
    #: per-bucket costs the event-driven engine schedules against backward
    #: compute.
    per_bucket_comm_time: List[float] = field(default_factory=list)


class DistributedDataParallel:
    """Synchronous data-parallel training of one model across simulated ranks.

    Parameters
    ----------
    model:
        The shared model replica (identical across ranks by construction).
    world_size:
        Number of simulated workers.
    process_group:
        Communication substrate; defaults to a zero-cost group (unit tests).
    bucket_cap_bytes:
        Gradient bucket capacity; PyTorch's 25 MiB default keeps small models
        in a single bucket, which matches how DDP behaves for them.
    comm_hook:
        ``None`` (native all-reduce), a compressor, or a hook callable.
    """

    def __init__(
        self,
        model: Module,
        world_size: int,
        process_group: Optional[ProcessGroup] = None,
        bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES,
        comm_hook: Optional[object] = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.model = model
        self.world_size = world_size
        self.process_group = process_group or ProcessGroup(world_size)
        if self.process_group.world_size != world_size:
            raise ValueError("process_group world_size does not match DDP world_size")
        self.buckets: List[Bucket] = build_buckets(model, bucket_cap_bytes)
        self._hook: CommHook = make_hook(comm_hook)
        self._hook_state = HookState(process_group=self.process_group)
        self._param_map = dict(model.named_parameters())
        parameters = list(self._param_map.values())
        #: Compute dtype of the gradient plumbing (the model's parameter dtype).
        self.dtype = parameters[0].data.dtype if parameters else get_default_dtype()
        #: Preallocated per-bucket (world_size, numel) gradient matrices,
        #: reused every iteration.
        self.arena = GradientArena(self.buckets, world_size, dtype=self.dtype)
        #: Surviving membership under a fault scenario; ``None`` (default)
        #: means the full healthy world and takes exactly the historical
        #: synchronisation path.
        self._active_ranks: Optional[List[int]] = None
        self._active_group: Optional[ProcessGroup] = None

    # ------------------------------------------------------------------ #
    # Hook management
    # ------------------------------------------------------------------ #
    def register_comm_hook(self, hook_or_compressor: object) -> None:
        """Replace the communication hook (mirrors DDP's ``register_comm_hook``)."""
        self._hook = make_hook(hook_or_compressor)

    @property
    def hook_state(self) -> HookState:
        return self._hook_state

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #
    @property
    def active_ranks(self) -> List[int]:
        """Global ids of the ranks currently participating in the reduce."""
        if self._active_ranks is None:
            return list(range(self.world_size))
        return list(self._active_ranks)

    @property
    def is_degraded(self) -> bool:
        """Whether synchronisation currently excludes any rank."""
        return self._active_ranks is not None

    def set_active_ranks(
        self,
        ranks: Optional[Sequence[int]],
        process_group: Optional[ProcessGroup] = None,
    ) -> None:
        """Restrict gradient synchronisation to a surviving subset of ranks.

        ``ranks`` is the sorted global membership collectives should run
        over; dead ranks keep their arena rows (the buffers are
        preallocated for the full world) but are excluded from staging and
        from every reduce.  ``process_group`` optionally supplies a
        degraded-world group — e.g. one costed with a fault plan's current
        link factor — and defaults to a group of ``len(ranks)`` over this
        wrapper's network model.  Passing ``None`` (or the full membership
        with no explicit group) restores the healthy fast path, whose
        synchronisation is bit-identical to a wrapper that was never
        degraded.
        """
        if ranks is None:
            self._active_ranks = None
            self._active_group = None
            self._hook_state.process_group = self.process_group
            return
        active = sorted(dict.fromkeys(int(r) for r in ranks))
        if not active:
            raise ValueError("active membership cannot be empty")
        if active[0] < 0 or active[-1] >= self.world_size:
            raise ValueError(
                f"active ranks {active} outside world_size={self.world_size}"
            )
        if len(active) == self.world_size and process_group is None:
            self.set_active_ranks(None)
            return
        self._active_ranks = active
        self._active_group = process_group or ProcessGroup(
            len(active), self.process_group.network
        )
        if self._active_group.world_size != len(active):
            raise ValueError(
                f"process_group world_size {self._active_group.world_size} does not "
                f"match {len(active)} active ranks"
            )
        self._hook_state.process_group = self._active_group

    # ------------------------------------------------------------------ #
    # Training step
    # ------------------------------------------------------------------ #
    def compute_local_gradients(
        self,
        batch: Tuple[np.ndarray, np.ndarray],
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
        copy: bool = True,
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Run forward/backward for one rank's batch and return its gradients.

        ``copy=False`` returns the live ``param.grad`` arrays instead of
        copies — valid only when the caller consumes them (e.g. stages them
        into the arena) before the next rank's backward pass overwrites them.
        """
        images, labels = batch
        self.model.zero_grad()
        logits = self.model(Tensor(images))
        loss = loss_fn(logits, labels)
        loss.backward()
        grads = {
            name: (param.grad.copy() if copy else param.grad)
            for name, param in self._param_map.items()
            if param.grad is not None
        }
        return float(loss.item()), grads

    def compute_batched_gradients(
        self,
        batch: Tuple[np.ndarray, np.ndarray],
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    ) -> Tuple[List[float], Dict[str, np.ndarray]]:
        """Run every rank's forward/backward as one world-batched pass.

        ``batch`` is the stacked ``(world_size, N, ...)`` images and
        ``(world_size, N)`` labels.  Parameters are temporarily swapped for
        zero-copy ``(world, *shape)`` broadcast views (see
        :mod:`repro.nn.batched`); the loss function returns a per-world loss
        vector whose backward is seeded with unit gradients — one per rank,
        exactly like the per-rank loop's scalar backward seeds.  Returns the
        per-rank losses and ``{name: (world, *shape)}`` gradient stacks, whose
        float64 values are bit-identical per rank to
        :meth:`compute_local_gradients` run rank by rank.
        """
        images, labels = batch
        if images.shape[0] != self.world_size:
            raise ValueError(
                f"batched images lead with {images.shape[0]} ranks, expected {self.world_size}"
            )
        self.model.zero_grad()
        with replica_views(self.model, self.world_size) as views:
            logits = self.model(Tensor(images))
            loss = loss_fn(logits, labels)
            loss.backward(np.ones(self.world_size, dtype=loss.data.dtype))
            grads = {
                name: view.grad for name, view in views.items() if view.grad is not None
            }
        losses = [float(value) for value in np.asarray(loss.data).reshape(-1)]
        return losses, grads

    @staticmethod
    def _stackable(per_rank_batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> bool:
        """Whether every rank's batch has identical shapes (batchable)."""
        first_images, first_labels = per_rank_batches[0]
        return all(
            images.shape == first_images.shape and np.shape(labels) == np.shape(first_labels)
            for images, labels in per_rank_batches
        )

    def train_step(
        self,
        per_rank_batches: Sequence[Tuple[np.ndarray, np.ndarray]],
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
        execution: str = "batched",
    ) -> StepResult:
        """One synchronous iteration: local backward on every rank, then sync.

        ``per_rank_batches`` must contain exactly ``world_size`` batches (one
        per rank, typically produced by a :class:`repro.data.DistributedSampler`).

        ``execution`` selects how the per-rank passes run: ``"batched"`` (the
        default) evaluates all ranks in one world-batched forward/backward,
        ``"looped"`` keeps the historical per-rank Python loop.  Float64
        results are bit-identical either way; ragged per-rank batch shapes
        fall back to the loop automatically.  Modeled time is unaffected —
        the simulation clock measures the *simulated* cluster, not host
        execution strategy.
        """
        if len(per_rank_batches) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank batches, got {len(per_rank_batches)}"
            )
        if execution not in ("batched", "looped"):
            raise ValueError(f"unknown execution strategy {execution!r}")

        if execution == "batched" and self._stackable(per_rank_batches):
            images = np.stack([batch[0] for batch in per_rank_batches])
            labels = np.stack([np.asarray(batch[1]) for batch in per_rank_batches])
            per_rank_losses, grads = self.compute_batched_gradients((images, labels), loss_fn)
            self.arena.write_world(grads)
        else:
            per_rank_losses = []
            for rank, batch in enumerate(per_rank_batches):
                # copy=False: gradients go straight from param.grad into the
                # arena row, skipping one full-model copy per rank per step.
                loss_value, grads = self.compute_local_gradients(batch, loss_fn, copy=False)
                self.arena.write_rank(rank, grads)
                per_rank_losses.append(loss_value)

        aggregated, bucket_events = self.synchronize_staged()
        self._write_back(aggregated)

        events = [event for per_bucket in bucket_events for event in per_bucket]
        comm_time = float(sum(e.time_seconds for e in events))
        comm_bytes = float(sum(e.bytes_per_worker for e in events))
        self._hook_state.iteration += 1
        return StepResult(
            loss=float(np.mean(per_rank_losses)),
            per_rank_loss=per_rank_losses,
            comm_time=comm_time,
            comm_bytes_per_worker=comm_bytes,
            events=events,
            per_bucket_numel=[b.numel for b in self.buckets],
            per_bucket_comm_time=[
                float(sum(e.time_seconds for e in per_bucket)) for per_bucket in bucket_events
            ],
        )

    # ------------------------------------------------------------------ #
    # Gradient synchronisation
    # ------------------------------------------------------------------ #
    def stage_rank_gradients(self, rank: int, grads_by_name: Dict[str, np.ndarray]) -> None:
        """Write one rank's named gradients into its arena rows."""
        self.arena.write_rank(rank, grads_by_name)

    def stage_world_gradients(self, grads_by_name: Dict[str, np.ndarray]) -> None:
        """Write ``(world, *shape)`` stacked gradients into all arena rows at once."""
        self.arena.write_world(grads_by_name)

    def synchronize_gradients(
        self,
        per_rank_grads: Sequence[Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Stage per-rank gradients into the arena, run the hook per bucket,
        unpack the result."""
        aggregated, _ = self.synchronize_gradients_traced(per_rank_grads)
        return aggregated

    def synchronize_gradients_traced(
        self,
        per_rank_grads: Sequence[Dict[str, np.ndarray]],
    ) -> Tuple[Dict[str, np.ndarray], List[List[CollectiveEvent]]]:
        """:meth:`synchronize_gradients`, also returning per-bucket events.

        The second element groups the collective events by the bucket whose
        hook issued them (one — or, for adaptive compressors, several — per
        bucket), which is what the event-driven engine needs to schedule each
        bucket's collective against backward compute.  The events are
        *drained* from the process group's per-step log as they are grouped
        (the group keeps running lifetime aggregates), so a long run's log
        stays bounded no matter how the caller drives synchronisation.
        """
        self.arena.write_all(per_rank_grads)
        return self.synchronize_staged()

    def synchronize_staged(self) -> Tuple[Dict[str, np.ndarray], List[List[CollectiveEvent]]]:
        """Aggregate the gradients currently staged in the arena.

        Under a degraded membership (:meth:`set_active_ranks`) each bucket's
        collective runs over the survivors only: the hook sees a
        ``(len(active), numel)`` matrix of the surviving ranks' arena rows
        and the degraded process group, so dead ranks contribute nothing to
        the average and the cost model charges an ``len(active)``-way
        collective.
        """
        active = self._active_ranks
        group = self.process_group if active is None else self._active_group
        aggregated: Dict[str, np.ndarray] = {}
        bucket_events: List[List[CollectiveEvent]] = []
        last_index = len(self.buckets) - 1
        for bucket in self.buckets:
            matrix = self.arena.matrix(bucket.index)
            if active is not None:
                # Fancy indexing copies the surviving rows out of the arena,
                # so hooks never see (or alias) dead ranks' stale gradients.
                matrix = matrix[active]
            grad_bucket = GradBucket(
                bucket,
                matrix=matrix,
                is_last=bucket.index == last_index,
            )
            events_before = len(group.events)
            with TRACER.span(
                "ddp/bucket_sync", cat="ddp",
                bucket=bucket.index, numel=bucket.numel,
            ):
                reduced = self._hook(self._hook_state, grad_bucket)
            bucket_events.append(group.events[events_before:])
            del group.events[events_before:]
            aggregated.update(bucket.unflatten(self._ensure_flat(reduced, bucket)))
        return aggregated, bucket_events

    def _ensure_flat(self, reduced, bucket: Bucket) -> np.ndarray:
        """Coerce a hook result to a flat compute-dtype array without copying.

        Already-flat arrays of the right dtype pass through untouched (the
        aggregated gradients then alias the hook's reduced buffer, which is
        fresh per step).  A result aliasing the arena itself *is* copied —
        otherwise the next step's staging would silently corrupt ``param.grad``.
        """
        array = np.asarray(reduced)
        if array.dtype != self.dtype:
            array = array.astype(self.dtype)
        array = array.reshape(-1)
        if array.size != bucket.numel:
            raise ValueError(
                f"hook returned {array.size} elements for bucket {bucket.index}, "
                f"expected {bucket.numel}"
            )
        if self.arena.shares_memory_with(array):
            array = array.copy()
        return array

    def apply_aggregated_gradients(self, aggregated: Dict[str, np.ndarray]) -> None:
        """Public entry point for writing externally aggregated gradients back."""
        self._write_back(aggregated)

    def _write_back(self, aggregated: Dict[str, np.ndarray]) -> None:
        dtype = self.dtype
        for name, grad in aggregated.items():
            param = self._param_map.get(name)
            if param is None:
                raise KeyError(f"aggregated gradient for unknown parameter {name!r}")
            # No-copy in the common case: unflatten returns correctly-shaped
            # views in the compute dtype already.
            grad = np.asarray(grad)
            param.grad = grad if grad.dtype == dtype else grad.astype(dtype)

    # ------------------------------------------------------------------ #
    # Parameter state (checkpointing and regime replicas)
    # ------------------------------------------------------------------ #
    def snapshot_parameters(self) -> Dict[str, np.ndarray]:
        """Copies of the model parameters, keyed like aggregated gradients."""
        return {name: param.data.copy() for name, param in self._param_map.items()}

    def restore_parameters(self, params: Dict[str, np.ndarray]) -> None:
        """Install parameter arrays captured by :meth:`snapshot_parameters`.

        Copies defensively so the caller's snapshot (e.g. a checkpoint that
        will seed several resumes) is never aliased by the live model.
        """
        for name, param in self._param_map.items():
            if name not in params:
                raise KeyError(f"snapshot missing parameter {name!r}")
            stored = np.asarray(params[name])
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"snapshot for {name!r} has shape {stored.shape}, "
                    f"expected {param.data.shape}"
                )
            param.data = stored.astype(self.dtype, copy=True)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def gradient_numel(self) -> int:
        """Total number of gradient elements synchronised per iteration."""
        return sum(bucket.numel for bucket in self.buckets)

    def gradient_nbytes(self) -> int:
        """Uncompressed fp32 bytes synchronised per iteration."""
        return sum(bucket.nbytes for bucket in self.buckets)
