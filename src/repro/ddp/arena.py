"""Preallocated per-bucket gradient arenas.

The seed synchronisation path re-flattened every rank's gradients into fresh
arrays each step (``bucket.flatten`` allocated a ``numel``-sized buffer per
rank per bucket per iteration) and the codec stages then *stacked* those lists
back into ``(world, numel)`` matrices.  A :class:`GradientArena` removes both
copies: it owns one ``(world_size, numel)`` matrix per bucket, allocated once
for the lifetime of the DDP wrapper.  Ranks write their gradients directly
into their row's slices, communication hooks see the rows as their flat
buffers, and matrix-shaped consumers (batched top-k, DGC) read the 2-D array
without re-stacking.

Aliasing contract: every slice of every row is either written or explicitly
zeroed on each staging pass, so one iteration's gradients can never leak into
the next through buffer reuse (covered by the aliasing-safety tests).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ddp.bucket import Bucket


class GradientArena:
    """One reusable ``(world_size, numel)`` gradient matrix per bucket."""

    def __init__(self, buckets: Sequence[Bucket], world_size: int, dtype=np.float64) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.dtype = np.dtype(dtype)
        self._buckets = list(buckets)
        self._matrices: List[np.ndarray] = [
            np.zeros((world_size, bucket.numel), dtype=self.dtype) for bucket in self._buckets
        ]

    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena (allocated once, reused every step)."""
        return int(sum(matrix.nbytes for matrix in self._matrices))

    def matrix(self, bucket_index: int) -> np.ndarray:
        """The full ``(world_size, numel)`` matrix of one bucket."""
        return self._matrices[bucket_index]

    def row(self, bucket_index: int, rank: int) -> np.ndarray:
        """One rank's flat gradient view for one bucket."""
        return self._matrices[bucket_index][rank]

    # ------------------------------------------------------------------ #
    def write_rank(self, rank: int, grads_by_name: Dict[str, np.ndarray]) -> None:
        """Stage one rank's named gradients into its row of every bucket.

        Slices whose parameter has no gradient this iteration are zeroed (the
        DDP convention for unused parameters), which together with the
        write-everything rule keeps rows free of stale data from prior steps.
        """
        for bucket, matrix in zip(self._buckets, self._matrices):
            row = matrix[rank]
            for piece in bucket.slices:
                grad = grads_by_name.get(piece.param_name)
                target = row[piece.offset : piece.end]
                if grad is None:
                    target[:] = 0.0
                    continue
                if grad.size != piece.numel:
                    raise ValueError(
                        f"gradient for {piece.param_name!r} has {grad.size} elements, "
                        f"bucket slice expects {piece.numel}"
                    )
                # One fused cast-and-copy into the arena row; no intermediate
                # flatten buffer is allocated.
                np.copyto(target, grad.reshape(-1), casting="unsafe")

    def write_world(self, grads_by_name: Dict[str, np.ndarray]) -> None:
        """Stage every rank at once from ``(world_size, *shape)`` gradient stacks.

        The world-batched execution path produces one stacked array per
        parameter (the replica views' ``.grad``); each lands in its bucket
        slice with a single vectorised copy instead of one copy per
        ``(rank, parameter)`` pair.  Missing parameters zero their slices in
        every row, preserving the write-everything aliasing contract.
        """
        world = self.world_size
        for bucket, matrix in zip(self._buckets, self._matrices):
            for piece in bucket.slices:
                grad = grads_by_name.get(piece.param_name)
                target = matrix[:, piece.offset : piece.end]
                if grad is None:
                    target[:] = 0.0
                    continue
                if grad.shape[0] != world or grad.size != world * piece.numel:
                    raise ValueError(
                        f"stacked gradient for {piece.param_name!r} has shape {grad.shape}, "
                        f"expected ({world}, ...) with {piece.numel} elements per rank"
                    )
                np.copyto(target, grad.reshape(world, -1), casting="unsafe")

    def write_all(self, per_rank_grads: Sequence[Dict[str, np.ndarray]]) -> None:
        """Stage every rank's gradient dict (one dict per rank)."""
        if len(per_rank_grads) != self.world_size:
            raise ValueError("need one gradient dict per rank")
        for rank, grads in enumerate(per_rank_grads):
            self.write_rank(rank, grads)

    def zero(self) -> None:
        """Clear every bucket matrix (mainly for tests)."""
        for matrix in self._matrices:
            matrix.fill(0.0)

    def shares_memory_with(self, array: np.ndarray) -> bool:
        """Whether ``array`` aliases any arena matrix (aliasing guard)."""
        return any(np.shares_memory(array, matrix) for matrix in self._matrices)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GradientArena(buckets={len(self._buckets)}, world_size={self.world_size}, "
            f"dtype={self.dtype.name}, nbytes={self.nbytes})"
        )
