"""Distributed data-parallel training simulator.

This package reproduces the PyTorch DDP abstractions the paper builds on:

* gradients are packed into **buckets** — flat 1-D tensors concatenating
  per-parameter gradients in reverse registration order, with parameter names
  erased (:mod:`repro.ddp.bucket`);
* gradient synchronisation is customisable through a **communication hook**
  that only ever sees the flat bucket (:mod:`repro.ddp.hooks`);
* :class:`repro.ddp.DistributedDataParallel` drives per-rank forward/backward
  passes over sharded data, runs the hook per bucket, and writes the aggregated
  gradient back into the model, so the optimiser step is identical on every
  rank (:mod:`repro.ddp.ddp`).

The deliberately restricted hook interface is what makes the paper's Mask
Tracker necessary: the hook cannot map bucket offsets back to named weights, so
sparsity structure must be recovered from the flat gradient itself.
"""

from repro.ddp.arena import GradientArena
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket, build_buckets
from repro.ddp.hooks import allreduce_hook, fp16_compress_hook, CompressorHook, HookState
from repro.ddp.ddp import DistributedDataParallel, StepResult

__all__ = [
    "Bucket",
    "BucketSlice",
    "GradBucket",
    "GradientArena",
    "build_buckets",
    "allreduce_hook",
    "fp16_compress_hook",
    "CompressorHook",
    "HookState",
    "DistributedDataParallel",
    "StepResult",
]
