"""Communication hooks.

A communication hook is a callable ``hook(state, grad_bucket) -> np.ndarray``
that receives a :class:`repro.ddp.bucket.GradBucket` (the flat per-rank
gradients of one bucket) and returns the aggregated, *averaged* flat gradient
that every rank should apply.  This mirrors
``torch.distributed.algorithms.ddp_comm_hooks``: the default hook is a plain
all-reduce, an fp16 hook halves the wire size, and arbitrary compressors are
plugged in through :class:`CompressorHook`.

All communication must go through ``state.process_group`` so that the modeled
time and byte counts are recorded for the experiment timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.codec import DensePayload, HalfPayload
from repro.ddp.bucket import GradBucket

#: Wire sizes used by the cost model (re-exported for backwards compatibility;
#: the payloads carry their own sizes).
FP32_BYTES = 4
FP16_BYTES = 2

CommHook = Callable[["HookState", GradBucket], np.ndarray]


@dataclass
class HookState:
    """State shared across hook invocations.

    Attributes
    ----------
    process_group:
        The simulated process group all communication must be issued through.
    iteration:
        Training iteration counter, incremented by the DDP wrapper once per
        step (useful for warm-up logic in adaptive hooks).
    extra:
        Free-form per-hook storage (e.g. error-feedback buffers keyed by
        bucket index).
    """

    process_group: ProcessGroup
    iteration: int = 0
    extra: Dict = field(default_factory=dict)


def allreduce_hook(state: HookState, bucket: GradBucket) -> np.ndarray:
    """Native fp32 ring all-reduce — the paper's "all-reduce" baseline."""
    payloads = [DensePayload(buf) for buf in bucket.buffers]
    reduced = state.process_group.all_reduce(payloads, average=True)
    return reduced.reduce_values()


def fp16_compress_hook(state: HookState, bucket: GradBucket) -> np.ndarray:
    """Half-precision all-reduce — the paper's "fp16" baseline.

    Values are cast to fp16 before aggregation (introducing the corresponding
    rounding error); the collective layer charges two bytes per element from
    the :class:`HalfPayload` wire size.
    """
    payloads = [HalfPayload(buf.astype(np.float16)) for buf in bucket.buffers]
    reduced = state.process_group.all_reduce(payloads, average=True)
    return reduced.reduce_values()


class CompressorHook:
    """Adapt a :class:`repro.compression.Compressor` into a communication hook.

    The compressor receives the raw per-rank flat gradients and the process
    group and must return the aggregated average gradient.  Per-bucket
    compressor state (error feedback, masks, momentum) is the compressor's own
    responsibility; the hook only namespaces it by bucket index.
    """

    def __init__(self, compressor) -> None:
        self.compressor = compressor

    def __call__(self, state: HookState, bucket: GradBucket) -> np.ndarray:
        return self.compressor.aggregate(bucket, state.process_group, iteration=state.iteration)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CompressorHook({self.compressor!r})"


def make_hook(compressor_or_hook: Optional[object]) -> CommHook:
    """Normalise user input into a communication hook.

    ``None`` maps to the default all-reduce hook; compressor objects (anything
    with an ``aggregate`` method) are wrapped in :class:`CompressorHook`;
    callables are used as-is.
    """
    if compressor_or_hook is None:
        return allreduce_hook
    if hasattr(compressor_or_hook, "aggregate"):
        return CompressorHook(compressor_or_hook)
    if callable(compressor_or_hook):
        return compressor_or_hook  # type: ignore[return-value]
    raise TypeError(
        "expected None, a Compressor (with .aggregate) or a hook callable, "
        f"got {type(compressor_or_hook).__name__}"
    )
