"""Gradient buckets.

PyTorch DDP coalesces per-parameter gradients into fixed-capacity buckets and
hands communication hooks a *flat 1-D tensor per bucket*, with parameters
packed in (approximately) reverse registration order so that communication of
late-layer gradients can overlap with early-layer backward computation.  The
paper highlights that this reformatting discards parameter names and ordering,
which is precisely the obstacle its Mask Tracker works around.

This module reproduces that abstraction:

* :class:`BucketSlice` — where one parameter lives inside a bucket;
* :class:`Bucket` — the static layout (slices, total element count);
* :class:`GradBucket` — one iteration's per-rank flat gradients for a bucket,
  the only object a communication hook receives;
* :func:`build_buckets` — split a model's parameters (reversed) into buckets by
  byte capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.tensorlib.dtypes import get_default_dtype

#: Default bucket capacity, matching PyTorch DDP's 25 MiB default.
DEFAULT_BUCKET_CAP_BYTES = 25 * 1024 * 1024
FLOAT32_BYTES = 4


@dataclass(frozen=True)
class BucketSlice:
    """Placement of one parameter's gradient inside a flat bucket."""

    param_name: str
    offset: int
    numel: int
    shape: Tuple[int, ...]

    @property
    def end(self) -> int:
        return self.offset + self.numel


@dataclass
class Bucket:
    """Static layout of one gradient bucket."""

    index: int
    slices: List[BucketSlice] = field(default_factory=list)

    @property
    def numel(self) -> int:
        return sum(s.numel for s in self.slices)

    @property
    def nbytes(self) -> int:
        return self.numel * FLOAT32_BYTES

    @property
    def param_names(self) -> List[str]:
        return [s.param_name for s in self.slices]

    def flatten(self, grads_by_name: Dict[str, np.ndarray]) -> np.ndarray:
        """Pack named gradients into this bucket's flat layout.

        Missing gradients (parameters that did not receive a gradient this
        iteration) are filled with zeros, matching DDP's behaviour for unused
        parameters.
        """
        flat = np.zeros(self.numel, dtype=get_default_dtype())
        for piece in self.slices:
            grad = grads_by_name.get(piece.param_name)
            if grad is None:
                continue
            if grad.size != piece.numel:
                raise ValueError(
                    f"gradient for {piece.param_name!r} has {grad.size} elements, "
                    f"bucket slice expects {piece.numel}"
                )
            flat[piece.offset : piece.end] = grad.reshape(-1)
        return flat

    def unflatten(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a flat bucket back into named, shaped gradients."""
        if flat.size != self.numel:
            raise ValueError(f"flat buffer has {flat.size} elements, bucket expects {self.numel}")
        out: Dict[str, np.ndarray] = {}
        for piece in self.slices:
            out[piece.param_name] = flat[piece.offset : piece.end].reshape(piece.shape)
        return out


class GradBucket:
    """One iteration's gradients for one bucket, as seen by a communication hook.

    The hook receives:

    * :attr:`index` — the bucket index (0 is the *last* bucket to be ready in
      real DDP; here simply the first bucket in reverse parameter order);
    * :meth:`buffer` / :attr:`buffers` — the flat 1-D per-rank gradients;
    * :attr:`is_last` — whether this is the final bucket of the iteration;
    * :attr:`matrix` — the stacked ``(world_size, numel)`` gradient matrix
      (zero-copy when the bucket is backed by a
      :class:`~repro.ddp.arena.GradientArena`, stacked lazily otherwise).

    It deliberately does **not** expose parameter names or shapes.
    """

    def __init__(
        self,
        bucket: Bucket,
        per_rank_flat: Optional[Sequence[np.ndarray]] = None,
        is_last: bool = False,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        if (per_rank_flat is None) == (matrix is None):
            raise ValueError("provide exactly one of per_rank_flat or matrix")
        self._bucket = bucket
        self.is_last = is_last
        if matrix is not None:
            if matrix.ndim != 2 or matrix.shape[1] != bucket.numel:
                raise ValueError("matrix must be (world_size, bucket.numel)")
            self._matrix: Optional[np.ndarray] = matrix
            self._buffers = list(matrix)
            return
        dtype = get_default_dtype()
        for flat in per_rank_flat:
            if flat.size != bucket.numel:
                raise ValueError("per-rank flat gradient does not match bucket layout")
        self._matrix = None
        self._buffers = [np.asarray(f, dtype=dtype) for f in per_rank_flat]

    @property
    def index(self) -> int:
        return self._bucket.index

    @property
    def world_size(self) -> int:
        return len(self._buffers)

    @property
    def numel(self) -> int:
        return self._bucket.numel

    @property
    def nbytes(self) -> int:
        return self._bucket.nbytes

    @property
    def buffers(self) -> List[np.ndarray]:
        """Flat gradient of every rank (list indexed by rank)."""
        return self._buffers

    @property
    def matrix(self) -> np.ndarray:
        """The ``(world_size, numel)`` gradient matrix, stacked at most once."""
        if self._matrix is None:
            self._matrix = np.stack(self._buffers)
        return self._matrix

    @property
    def materialized_matrix(self) -> Optional[np.ndarray]:
        """The matrix if one already exists (arena-backed buckets), else None.

        Lets consumers offer the zero-copy matrix to stages that want it
        without forcing a stack on list-backed buckets whose pipeline may
        never read it.
        """
        return self._matrix

    def buffer(self, rank: int = 0) -> np.ndarray:
        """Flat gradient of one rank."""
        return self._buffers[rank]


def build_buckets(
    model: Module,
    bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES,
) -> List[Bucket]:
    """Partition a model's parameters into gradient buckets.

    Parameters are taken in **reverse registration order** (so the classifier
    head lands in bucket 0), mirroring PyTorch DDP's bucketing strategy, and
    greedily packed until the byte capacity is exceeded.
    """
    if bucket_cap_bytes <= 0:
        raise ValueError("bucket_cap_bytes must be positive")

    named = list(model.named_parameters())
    named.reverse()

    buckets: List[Bucket] = []
    current = Bucket(index=0)
    used_bytes = 0
    for name, param in named:
        numel = int(param.size)
        nbytes = numel * FLOAT32_BYTES
        if current.slices and used_bytes + nbytes > bucket_cap_bytes:
            buckets.append(current)
            current = Bucket(index=len(buckets))
            used_bytes = 0
        current.slices.append(
            BucketSlice(param_name=name, offset=current.numel, numel=numel, shape=tuple(param.shape))
        )
        used_bytes += nbytes
    if current.slices:
        buckets.append(current)
    return buckets
