"""Core reverse-mode autodiff tensor.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records, for every
operation that produced it, a closure that propagates gradients to its parents.
Calling :meth:`Tensor.backward` on a scalar output runs those closures in
reverse topological order.

Broadcasting is handled uniformly by :func:`_unbroadcast`, which sums gradient
contributions over the axes that numpy broadcast during the forward pass.

Performance notes (the engine sits under every training step):

* tensors are stored in the process-wide compute dtype
  (:mod:`repro.tensorlib.dtypes`): ``float64`` by default, ``float32`` for the
  fast path;
* op results are wrapped through :meth:`Tensor._wrap`, which skips the
  ``__init__`` coercion machinery, and ops return early — without allocating a
  backward closure — when no input requires a gradient;
* :meth:`Tensor._accumulate` takes ownership of gradient arrays its caller
  guarantees to be freshly allocated (``own=True``), avoiding a defensive copy
  per graph node, and accumulates subsequent contributions in place.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensorlib import backend as _backend
from repro.tensorlib import dtypes as _dtypes
from repro.tensorlib.dtypes import get_default_dtype

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable gradient tracking."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` into the requested (default: process) compute dtype."""
    if dtype is None:
        dtype = _dtypes._DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    numpy broadcasting can (a) prepend dimensions and (b) stretch size-1
    dimensions.  The adjoint of broadcasting is summation over the stretched
    axes, which is what this helper performs.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over stretched size-1 dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure.

    Parameters
    ----------
    data:
        Array-like value.  Stored in the process compute dtype
        (``float64`` unless changed via :mod:`repro.tensorlib.dtypes`) for
        numerical robustness of the small models used in the reproduction.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _wrap(data: np.ndarray) -> "Tensor":
        """Fast tensor construction for op results (no ``__init__`` machinery).

        ``data`` must already be an ndarray; results of ops between
        compute-dtype operands stay in the compute dtype, so the coercion
        check is a cheap dtype comparison rather than a full ``_as_array``.
        """
        dtype = _dtypes._DEFAULT_DTYPE
        if data.dtype != dtype:
            data = data.astype(dtype)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.name = None
        return out

    @staticmethod
    def _attach(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Wrap an op result that is known to require a gradient.

        Callers check ``requires_grad``/grad mode *before* building the
        backward closure (and return a plain :meth:`_wrap` otherwise), so no
        re-check happens here.
        """
        out = Tensor._wrap(data)
        out.requires_grad = True
        out._parents = parents
        out._backward = backward
        return out

    def _needs_graph(self, *others: "Tensor") -> bool:
        """Whether an op over ``self`` (and ``others``) must record a closure."""
        if not _GRAD_ENABLED:
            return False
        if self.requires_grad:
            return True
        return any(o.requires_grad for o in others)

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add a gradient contribution.

        ``own=True`` asserts that ``grad`` is a freshly allocated array no one
        else holds, letting the first accumulation adopt it instead of copying
        — pass-through gradients (views of the child's ``grad`` buffer, e.g.
        from add/reshape backwards) must keep the default ``own=False``.
        Follow-up contributions are added in place.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if own and grad.dtype == self.data.dtype and grad.shape == self.data.shape:
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
                if self.grad.shape != self.data.shape:
                    self.grad = np.broadcast_to(self.grad, self.data.shape).copy()
        else:
            np.add(self.grad, grad, out=self.grad, casting="unsafe")

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1`` for scalar outputs; required for
            non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            # Iterative post-order DFS over parents in registration order —
            # the same visitation (and therefore gradient accumulation) order
            # as a recursive walk, without iterator churn.  Leaves are emitted
            # directly instead of taking a push/pop round trip.
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents_iter = stack[-1]
                advanced = False
                for parent in parents_iter:
                    parent_id = id(parent)
                    if parent_id in visited or parent_id in seen_on_stack:
                        continue
                    if not parent._parents:
                        visited.add(parent_id)
                        topo.append(parent)
                        continue
                    stack.append((parent, iter(parent._parents)))
                    seen_on_stack.add(parent_id)
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    visited.add(id(current))
                    topo.append(current)

        build(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._ensure(other)
        out_data = self.data + other.data
        if not self._needs_graph(other):
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape), own=grad.shape != self.shape)
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape), own=grad.shape != other.shape)

        return Tensor._attach(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        if not self._needs_graph():
            return Tensor._wrap(-self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, own=True)

        return Tensor._attach(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._ensure(other)
        out_data = self.data - other.data
        if not self._needs_graph(other):
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape), own=grad.shape != self.shape)
            if other.requires_grad:
                # Reduce first, negate the (small) result in place: IEEE
                # negation commutes with summation bit-exactly, and this
                # avoids materialising a full-size -grad when broadcasting
                # reduced the other operand (x - mean chains).
                reduced = _unbroadcast(grad, other.shape)
                if reduced is grad:
                    other._accumulate(-grad, own=True)
                else:
                    np.negative(reduced, out=reduced)
                    other._accumulate(reduced, own=True)

        return Tensor._attach(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._ensure(other)
        out_data = self.data * other.data
        if not self._needs_graph(other):
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            if self is other:
                # x * x: both contributions are identical, and g + g == 2 * g
                # bit-exactly, so one doubled product replaces two full
                # multiply-and-accumulate passes (the var() hot path).
                doubled = _unbroadcast(grad * self.data, self.shape)
                np.multiply(doubled, 2.0, out=doubled)
                self._accumulate(doubled, own=True)
                return
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape), own=True)
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape), own=True)

        return Tensor._attach(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._ensure(other)
        out_data = self.data / other.data
        if not self._needs_graph(other):
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape), own=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape), own=True
                )

        return Tensor._attach(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1), own=True)

        return Tensor._attach(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix multiplication supporting batched operands (numpy semantics).

        Routed through the active :mod:`repro.tensorlib.backend`; the numpy
        reference backend is ``np.matmul``, whose per-slice GEMM dispatch is
        what keeps world-batched execution bit-identical to the per-rank loop.
        """
        other = Tensor._ensure(other)
        b = _backend.get_backend()
        out_data = b.matmul(self.data, other.data)
        if not self._needs_graph(other):
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.outer(grad, other.data) if self.data.ndim == 2 else grad[..., None] * other.data
                else:
                    grad_self = b.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_self, self.shape), own=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad)
                else:
                    grad_other = b.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate(_unbroadcast(grad_other, other.shape), own=True)

        return Tensor._attach(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            # Broadcast view: _accumulate materialises it on first touch and
            # broadcasts in place afterwards, so no full-size copy is made here.
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._attach(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = 1
            for a in axis:
                count *= self.shape[a]
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split ties evenly so the gradient remains well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts, own=True)

        return Tensor._attach(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not self._needs_graph():
            return Tensor._wrap(out_data)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._attach(out_data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if not self._needs_graph():
            return Tensor._wrap(out_data)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._attach(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self._needs_graph():
            return Tensor._wrap(out_data)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(original_shape, dtype=self.data.dtype)
            np.add.at(full, index, grad)
            self._accumulate(full, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad the tensor; ``pad_width`` follows ``numpy.pad`` conventions."""
        out_data = _backend.get_backend().pad(self.data, pad_width)
        if not self._needs_graph():
            return Tensor._wrap(out_data)
        slices = tuple(
            slice(before, before + dim)
            for (before, _after), dim in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return Tensor._attach(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2), own=True)

        return Tensor._attach(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data), own=True)

        return Tensor._attach(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as used by ViT)."""
        c = float(np.sqrt(2.0 / np.pi))
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh_inner ** 2
            d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
            local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(grad * local, own=True)

        return Tensor._attach(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        if not self._needs_graph():
            return Tensor._wrap(out_data)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot), own=True)

        return Tensor._attach(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        if not self._needs_graph():
            return Tensor._wrap(out_data)
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True), own=True)

        return Tensor._attach(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def cat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        return concatenate(list(tensors), axis=axis)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensors]
        return concatenate(expanded, axis=axis)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor._wrap(out_data)
    if requires:
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._backward = backward
    return out
