"""Differentiable functional primitives built on :class:`repro.tensorlib.Tensor`.

These are the structured operations the model zoo needs that do not fit as
simple elementwise methods on the tensor class: im2col-based 2-D convolution,
max/average pooling, embedding lookup and dropout.  Each function constructs the
forward value with plain numpy and attaches a backward closure that scatters the
gradient back to its inputs.

The convolution path is the hottest code in every training step, so it avoids
``np.pad`` (a zero buffer plus one slice assignment is several times faster)
and — on the float32 fast path — contracts the weight gradient through BLAS
instead of ``np.einsum``.  The float64 path keeps the original kernels so its
results stay bit-identical to the historical behaviour.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensorlib.tensor import Tensor, is_grad_enabled


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _make_output(data: np.ndarray, parents, backward) -> Tensor:
    out = Tensor._wrap(data)
    if is_grad_enabled() and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


def _needs_graph(*parents: Tensor) -> bool:
    return is_grad_enabled() and any(p.requires_grad for p in parents)


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def _zero_pad(images: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Zero-pad the two trailing spatial axes (fast ``np.pad`` replacement)."""
    if ph == 0 and pw == 0:
        return images
    n, c, h, w = images.shape
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=images.dtype)
    padded[:, :, ph : ph + h, pw : pw + w] = images
    return padded


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` images into ``(N, out_h*out_w, C*kh*kw)`` patches."""
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding

    padded = _zero_pad(images, ph, pw)
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    strides = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back into image space."""
    n, c, h, w = image_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    # One contiguous re-layout (kh, kw, N, C, out_h, out_w) up front turns the
    # kh*kw scatter-adds below into contiguous reads; the additions happen in
    # the same order with the same values, so results are bit-identical.
    cols = np.ascontiguousarray(
        cols.reshape(n, out_h, out_w, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    )
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[i, j]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution over ``(N, C, H, W)`` input with ``(O, C, kh, kw)`` weight."""
    stride = _pair(stride)
    padding = _pair(padding)
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]} channels, weight expects {in_channels}"
        )

    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)
    # (N, L, CKK) @ (CKK, O) -> (N, L, O)
    out = cols @ w_mat.T
    if bias is not None:
        out = out + bias.data.reshape(1, 1, -1)
    out_data = out.transpose(0, 2, 1).reshape(x.shape[0], out_channels, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _needs_graph(*parents):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, O, out_h, out_w) -> (N, L, O)
        grad_mat = grad.reshape(x.shape[0], out_channels, out_h * out_w).transpose(0, 2, 1)
        if weight.requires_grad:
            if grad_mat.dtype == np.float32:
                # BLAS contraction; float64 keeps einsum so its summation
                # order (and therefore every historical result) is unchanged.
                grad_w = np.tensordot(grad_mat, cols, axes=((0, 1), (0, 1)))
            else:
                grad_w = np.einsum("nlo,nlk->ok", grad_mat, cols)
            weight._accumulate(grad_w.reshape(weight.shape), own=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 1)), own=True)
        if x.requires_grad:
            if (
                grad_mat.dtype == np.float32
                and stride == (1, 1)
                and padding[0] <= kh - 1
                and padding[1] <= kw - 1
            ):
                # Float32 fast path: the input gradient of a stride-1
                # convolution is a correlation of the output gradient with the
                # flipped kernels — one im2col + BLAS matmul instead of the
                # kh*kw strided scatter-add loop in col2im.
                grad_img = grad.reshape(x.shape[0], out_channels, out_h, out_w)
                flipped = weight.data[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
                g_cols, _ = im2col(grad_img, (kh, kw), (1, 1), (kh - 1 - padding[0], kw - 1 - padding[1]))
                grad_x = (
                    (g_cols @ flipped.reshape(x.shape[1], -1).T)
                    .transpose(0, 2, 1)
                    .reshape(x.shape)
                )
            else:
                grad_cols = grad_mat @ w_mat
                grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            x._accumulate(grad_x, own=True)

    return _make_output(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Max pooling over ``(N, C, H, W)`` input."""
    kernel_size = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel_size
    n, c, h, w = x.shape
    kh, kw = kernel_size
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), kernel_size, stride, (0, 0))
    cols = cols.reshape(n * c, out_h * out_w, kh * kw)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[..., None], axis=2).reshape(n, c, out_h, out_w)
    if not _needs_graph(x):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(
            grad_cols, argmax[..., None], grad.reshape(n * c, out_h * out_w, 1), axis=2
        )
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel_size, stride, (0, 0))
        x._accumulate(grad_x.reshape(n, c, h, w), own=True)

    return _make_output(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Average pooling over ``(N, C, H, W)`` input."""
    kernel_size = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel_size
    n, c, h, w = x.shape
    kh, kw = kernel_size
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), kernel_size, stride, (0, 0))
    cols = cols.reshape(n * c, out_h * out_w, kh * kw)
    out_data = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    if not _needs_graph(x):
        return Tensor._wrap(out_data)
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.repeat(
            grad.reshape(n * c, out_h * out_w, 1) * scale, kh * kw, axis=2
        )
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel_size, stride, (0, 0))
        x._accumulate(grad_x.reshape(n, c, h, w), own=True)

    return _make_output(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only square outputs dividing the input evenly are supported."""
    n, c, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError("adaptive_avg_pool2d requires the input size to be divisible by output_size")
    return avg_pool2d(x, kernel_size=(h // output_size, w // output_size))


# --------------------------------------------------------------------------- #
# Fused normalisation (float32 fast path)
# --------------------------------------------------------------------------- #
def fused_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    axes: Tuple[int, ...],
    eps: float,
    param_shape: Tuple[int, ...],
) -> Tensor:
    """Normalise ``x`` over ``axes`` and apply a learned scale/shift, fused.

    One graph node instead of the ~10 the composite ``mean``/``var``/
    arithmetic formulation creates, with the standard analytic batch-norm
    backward.  Used by the float32 fast path of ``BatchNorm2d`` and
    ``LayerNorm``; the float64 path keeps the composite ops so its results
    stay bit-identical to the historical behaviour.

    ``param_shape`` is the broadcast shape the raw ``weight``/``bias`` arrays
    take against ``x`` (e.g. ``(1, C, 1, 1)`` for BatchNorm2d, their own
    shape for LayerNorm); parameter gradients are unbroadcast from it.
    """
    from repro.tensorlib.tensor import _unbroadcast  # noqa: PLC0415

    data = x.data
    mean = data.mean(axis=axes, keepdims=True)
    centered = data - mean
    var = np.mean(centered * centered, axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    w = weight.data.reshape(param_shape)
    out_data = x_hat * w + bias.data.reshape(param_shape)

    parents = (x, weight, bias)
    if not _needs_graph(*parents):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        if bias.requires_grad:
            bias_grad = _unbroadcast(grad, param_shape)
            bias._accumulate(bias_grad.reshape(bias.shape), own=bias_grad is not grad)
        if weight.requires_grad:
            weight._accumulate(
                _unbroadcast(grad * x_hat, param_shape).reshape(weight.shape), own=True
            )
        if x.requires_grad:
            g_hat = grad * w
            mean_g = g_hat.mean(axis=axes, keepdims=True)
            mean_gx = (g_hat * x_hat).mean(axis=axes, keepdims=True)
            x._accumulate(inv_std * (g_hat - mean_g - x_hat * mean_gx), own=True)

    return _make_output(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Embedding, dropout
# --------------------------------------------------------------------------- #
def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Lookup rows of ``weight`` for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]
    if not _needs_graph(weight):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_w = np.zeros_like(weight.data)
        np.add.at(grad_w, indices, grad)
        weight._accumulate(grad_w, own=True)

    return _make_output(out_data, (weight,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales surviving activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out_data = x.data * mask
    if not _needs_graph(x):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask, own=True)

    return _make_output(out_data, (x,), backward)


# --------------------------------------------------------------------------- #
# Losses (functional form)
# --------------------------------------------------------------------------- #
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(N, C)`` logits and integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.dtype))
    return (diff * diff).mean()


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy of raw logits."""
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
