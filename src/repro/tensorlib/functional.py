"""Differentiable functional primitives built on :class:`repro.tensorlib.Tensor`.

These are the structured operations the model zoo needs that do not fit as
simple elementwise methods on the tensor class: im2col-based 2-D convolution,
max/average pooling, embedding lookup and dropout.  Each function constructs the
forward value with plain numpy and attaches a backward closure that scatters the
gradient back to its inputs.

The convolution path is the hottest code in every training step, so it avoids
``np.pad`` (a zero buffer plus one slice assignment is several times faster)
and — on the float32 fast path — contracts the weight gradient through BLAS
instead of ``np.einsum``.  The float64 path keeps the original kernels so its
results stay bit-identical to the historical behaviour.

World-batched execution
-----------------------
The simulated-DDP training step can evaluate all ranks at once by prepending a
``world`` axis to the data and broadcasting parameters to ``(world, *shape)``
views (see :mod:`repro.nn.batched`).  The kernels here accept that extra
leading dimension — conv/pool collapse it into the im2col batch axis (each
window is still reduced per sample), contractions keep ``world`` as a matmul
*batch* axis so numpy dispatches the same per-slice GEMMs as the per-rank
loop, and :func:`cross_entropy` returns a per-world loss vector.  Every
world-batched float64 result is bit-identical per rank to the looped kernels;
the one exception is :func:`dropout`, which draws a single batched mask (a
different RNG consumption pattern than one draw per rank).

Every hot kernel routes through the active :mod:`repro.tensorlib.backend` —
the contractions, the ``im2col`` patch gather (and with it the transposed-conv
input-gradient correlation), the ``col2im`` scatter-add, the pooling window
reductions and the fused-norm statistics — whose numpy reference defines the
summation order accelerated backends must reproduce.  Both the looped and
world-batched execution paths funnel through these functions, so routing here
covers both.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.tensorlib.backend import get_backend
from repro.tensorlib.tensor import Tensor, is_grad_enabled


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _make_output(data: np.ndarray, parents, backward) -> Tensor:
    out = Tensor._wrap(data)
    if is_grad_enabled() and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


def _needs_graph(*parents: Tensor) -> bool:
    return is_grad_enabled() and any(p.requires_grad for p in parents)


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def _zero_pad(images: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Zero-pad the two trailing spatial axes (fast ``np.pad`` replacement)."""
    if ph == 0 and pw == 0:
        return images
    n, c, h, w = images.shape
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=images.dtype)
    padded[:, :, ph : ph + h, pw : pw + w] = images
    return padded


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` images into ``(N, out_h*out_w, C*kh*kw)`` patches."""
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding

    padded = _zero_pad(images, ph, pw)
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    cols = get_backend().im2col_gather(padded, (kh, kw), (sh, sw), (out_h, out_w))
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back into image space."""
    n, c, h, w = image_shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    # One contiguous re-layout (kh, kw, N, C, out_h, out_w) up front turns the
    # kh*kw scatter-adds below into contiguous reads; the additions happen in
    # the same order with the same values, so results are bit-identical.
    cols = np.ascontiguousarray(
        cols.reshape(n, out_h, out_w, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    )
    if sh >= kh and sw >= kw:
        # Non-overlapping windows (every pooling layout): the kh*kw ordered
        # '+=' passes each touch a disjoint set of positions, so the whole
        # scatter collapses into one strided assignment — bit-identical
        # because every position receives exactly one addend (0 + x == x).
        strides = padded.strides
        view = np.lib.stride_tricks.as_strided(
            padded,
            shape=(kh, kw, n, c, out_h, out_w),
            strides=(
                strides[2],
                strides[3],
                strides[0],
                strides[1],
                strides[2] * sh,
                strides[3] * sw,
            ),
        )
        view[...] = cols
    else:
        get_backend().col2im_scatter_add(padded, cols, sh, sw, out_h, out_w)
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution over ``(N, C, H, W)`` input with ``(O, C, kh, kw)`` weight.

    A 5-D weight view ``(world, O, C, kh, kw)`` with 5-D input
    ``(world, N, C, H, W)`` selects the world-batched kernel, whose per-rank
    float64 results are bit-identical to running this kernel per world slice.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    if weight.ndim == 5:
        return _conv2d_batched(x, weight, bias, stride, padding)
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]} channels, weight expects {in_channels}"
        )

    backend = get_backend()
    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)
    # (N, L, CKK) @ (CKK, O) -> (N, L, O)
    out = backend.matmul(cols, w_mat.T)
    if bias is not None:
        out = out + bias.data.reshape(1, 1, -1)
    out_data = out.transpose(0, 2, 1).reshape(x.shape[0], out_channels, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _needs_graph(*parents):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, O, out_h, out_w) -> (N, L, O)
        grad_mat = grad.reshape(x.shape[0], out_channels, out_h * out_w).transpose(0, 2, 1)
        if weight.requires_grad:
            grad_w = backend.conv_weight_grad(grad_mat, cols)
            weight._accumulate(grad_w.reshape(weight.shape), own=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 1)), own=True)
        if x.requires_grad:
            if (
                stride == (1, 1)
                and padding[0] <= kh - 1
                and padding[1] <= kw - 1
            ):
                # Fast path: the input gradient of a stride-1 convolution is a
                # correlation of the output gradient with the flipped kernels —
                # one im2col + BLAS matmul instead of the kh*kw strided
                # scatter-add loop in col2im.
                grad_img = grad.reshape(x.shape[0], out_channels, out_h, out_w)
                flipped = weight.data[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
                g_cols, _ = im2col(grad_img, (kh, kw), (1, 1), (kh - 1 - padding[0], kw - 1 - padding[1]))
                grad_x = (
                    backend.matmul(g_cols, flipped.reshape(x.shape[1], -1).T)
                    .transpose(0, 2, 1)
                    .reshape(x.shape)
                )
            else:
                grad_cols = backend.matmul(grad_mat, w_mat)
                grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
            x._accumulate(grad_x, own=True)

    return _make_output(out_data, parents, backward)


def _conv2d_batched(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tensor:
    """World-batched convolution: ``(world, N, C, H, W)`` input, ``(world, O, C, kh, kw)`` weight.

    The world axis folds into im2col's batch axis (windows still reduce per
    sample) and stays a *batch* axis of every contraction, so numpy runs the
    same per-slice GEMMs — including the weight-gradient contraction — as the
    per-rank loop.  Replica views broadcast from shared
    parameters (``strides[0] == 0``) are detected so the shared weight matrix
    is used directly instead of materialising ``world`` copies.
    """
    if x.ndim != 5 or x.shape[0] != weight.shape[0]:
        raise ValueError(
            f"batched conv2d expects (world, N, C, H, W) input matching weight world "
            f"{weight.shape[0]}, got input shape {x.shape}"
        )
    world, n = x.shape[0], x.shape[1]
    out_channels, in_channels, kh, kw = weight.shape[1:]
    if x.shape[2] != in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[2]} channels, weight expects {in_channels}"
        )

    backend = get_backend()
    flat_images = x.data.reshape((world * n,) + x.shape[2:])
    cols, (out_h, out_w) = im2col(flat_images, (kh, kw), stride, padding)  # (W*N, L, K)
    length = out_h * out_w
    cols4 = cols.reshape(world, n, length, -1)
    shared_weight = weight.data.strides[0] == 0
    if shared_weight:
        w_mat = weight.data[0].reshape(out_channels, -1)  # (O, K), no world copies
        w_mats = None
        out4 = backend.matmul(cols, w_mat.T).reshape(world, n, length, out_channels)
    else:
        w_mat = None
        w_mats = weight.data.reshape(world, out_channels, -1)  # (W, O, K)
        # (W, N, L, K) @ (W, 1, K, O) -> (W, N, L, O), per-slice GEMMs.
        out4 = backend.matmul(cols4, np.swapaxes(w_mats, -1, -2)[:, None])
    if bias is not None:
        b = bias.data  # (world, O) view
        if b.strides[0] == 0:
            out4 = out4 + b[0].reshape(1, 1, 1, -1)
        else:
            out4 = out4 + b.reshape(world, 1, 1, -1)
    out_data = out4.transpose(0, 1, 3, 2).reshape(world, n, out_channels, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _needs_graph(*parents):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        # grad: (W, N, O, out_h, out_w) -> (W, N, L, O)
        grad_mat = grad.reshape(world, n, out_channels, length).transpose(0, 1, 3, 2)
        if weight.requires_grad:
            grad_w = backend.conv_weight_grad(grad_mat, cols4)  # (W, O, K)
            weight._accumulate(grad_w.reshape(weight.shape), own=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(1, 2)), own=True)
        if x.requires_grad:
            if (
                stride == (1, 1)
                and padding[0] <= kh - 1
                and padding[1] <= kw - 1
            ):
                # Correlation fast path, mirroring the per-rank kernel: the
                # world axis folds into im2col's batch axis and stays a batch
                # axis of the GEMM, so per-rank results are bit-identical.
                grad_img = grad.reshape(world * n, out_channels, out_h, out_w)
                g_cols, _ = im2col(grad_img, (kh, kw), (1, 1), (kh - 1 - padding[0], kw - 1 - padding[1]))
                if shared_weight:
                    flipped = weight.data[0][:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
                    gx = backend.matmul(g_cols, flipped.reshape(in_channels, -1).T)
                else:
                    # (W, C, O*kh*kw) flipped kernels per world; per-slice GEMM.
                    flipped = weight.data[:, :, :, ::-1, ::-1].transpose(0, 2, 1, 3, 4)
                    fl = flipped.reshape(world, in_channels, -1)
                    g_cols4 = g_cols.reshape(world, n, g_cols.shape[1], -1)
                    gx = backend.matmul(g_cols4, np.swapaxes(fl, -1, -2)[:, None]).reshape(
                        world * n, g_cols.shape[1], in_channels
                    )
                grad_x = gx.transpose(0, 2, 1).reshape(x.shape)
            else:
                if shared_weight:
                    grad_cols = backend.matmul(
                        grad_mat.reshape(world * n, length, out_channels), w_mat
                    )
                else:
                    grad_cols = backend.matmul(grad_mat, w_mats[:, None]).reshape(
                        world * n, length, -1
                    )
                grad_x = col2im(
                    grad_cols, (world * n,) + x.shape[2:], (kh, kw), stride, padding
                ).reshape(x.shape)
            x._accumulate(grad_x, own=True)

    return _make_output(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Max pooling over ``(..., C, H, W)`` input (extra leading axes fold into the batch)."""
    kernel_size = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel_size
    *lead, c, h, w = x.shape
    flat = math.prod(lead) * c
    kh, kw = kernel_size
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, _ = im2col(x.data.reshape(flat, 1, h, w), kernel_size, stride, (0, 0))
    cols = cols.reshape(flat, out_h * out_w, kh * kw)
    values, argmax = get_backend().pool_reduce(cols, "max")
    out_data = values.reshape(*lead, c, out_h, out_w)
    if not _needs_graph(x):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(
            grad_cols, argmax[..., None], grad.reshape(flat, out_h * out_w, 1), axis=2
        )
        grad_x = col2im(grad_cols, (flat, 1, h, w), kernel_size, stride, (0, 0))
        x._accumulate(grad_x.reshape(x.shape), own=True)

    return _make_output(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Average pooling over ``(..., C, H, W)`` input (extra leading axes fold into the batch)."""
    kernel_size = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel_size
    *lead, c, h, w = x.shape
    flat = math.prod(lead) * c
    kh, kw = kernel_size
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, _ = im2col(x.data.reshape(flat, 1, h, w), kernel_size, stride, (0, 0))
    cols = cols.reshape(flat, out_h * out_w, kh * kw)
    values, _ = get_backend().pool_reduce(cols, "mean")
    out_data = values.reshape(*lead, c, out_h, out_w)
    if not _needs_graph(x):
        return Tensor._wrap(out_data)
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.repeat(
            grad.reshape(flat, out_h * out_w, 1) * scale, kh * kw, axis=2
        )
        grad_x = col2im(grad_cols, (flat, 1, h, w), kernel_size, stride, (0, 0))
        x._accumulate(grad_x.reshape(x.shape), own=True)

    return _make_output(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only square outputs dividing the input evenly are supported."""
    h, w = x.shape[-2], x.shape[-1]
    if h % output_size or w % output_size:
        raise ValueError("adaptive_avg_pool2d requires the input size to be divisible by output_size")
    return avg_pool2d(x, kernel_size=(h // output_size, w // output_size))


# --------------------------------------------------------------------------- #
# Fused normalisation (float32 fast path)
# --------------------------------------------------------------------------- #
def fused_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    axes: Tuple[int, ...],
    eps: float,
    param_shape: Tuple[int, ...],
    stats=None,
) -> Tensor:
    """Normalise ``x`` over ``axes`` and apply a learned scale/shift, fused.

    One graph node instead of the ~10 the composite ``mean``/``var``/
    arithmetic formulation creates, with the standard analytic batch-norm
    backward.  Used by the float32 fast path of ``BatchNorm2d`` and
    ``LayerNorm``; the float64 path keeps the composite ops so its results
    stay bit-identical to the historical behaviour.

    ``param_shape`` is the broadcast shape the raw ``weight``/``bias`` arrays
    take against ``x`` (e.g. ``(1, C, 1, 1)`` for BatchNorm2d, their own
    shape for LayerNorm); parameter gradients are unbroadcast from it.

    ``stats`` accepts the ``(mean, var, inv_std, x_hat)`` tuple of
    ``backend.fused_norm_stats`` when the caller already computed it (e.g.
    ``BatchNorm2d``, which folds the same statistics into its running
    averages), avoiding a second pass over the activations.
    """
    from repro.tensorlib.tensor import _unbroadcast  # noqa: PLC0415

    backend = get_backend()
    if stats is None:
        stats = backend.fused_norm_stats(x.data, axes, eps)
    _, _, inv_std, x_hat = stats
    w = weight.data.reshape(param_shape)
    out_data = x_hat * w + bias.data.reshape(param_shape)

    parents = (x, weight, bias)
    if not _needs_graph(*parents):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        if bias.requires_grad:
            bias_grad = _unbroadcast(grad, param_shape)
            bias._accumulate(bias_grad.reshape(bias.shape), own=bias_grad is not grad)
        if weight.requires_grad:
            weight._accumulate(
                _unbroadcast(grad * x_hat, param_shape).reshape(weight.shape), own=True
            )
        if x.requires_grad:
            x._accumulate(
                backend.fused_norm_backward(grad, w, x_hat, inv_std, axes), own=True
            )

    return _make_output(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Embedding, dropout
# --------------------------------------------------------------------------- #
def embedding(indices: np.ndarray, weight: Tensor) -> Tensor:
    """Lookup rows of ``weight`` for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = get_backend().take(weight.data, indices, axis=0)
    if not _needs_graph(weight):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_w = np.zeros_like(weight.data)
        np.add.at(grad_w, indices, grad)
        weight._accumulate(grad_w, own=True)

    return _make_output(out_data, (weight,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales surviving activations by ``1/(1-p)`` at train time.

    Under world-batched execution one ``(world, ...)`` mask is drawn in a
    single call, a different RNG consumption pattern than one draw per rank —
    the only world-batched kernel that is *not* bit-identical to the looped
    path.  The frozen golden workloads all run with dropout disabled.
    """
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out_data = x.data * mask
    if not _needs_graph(x):
        return Tensor._wrap(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask, own=True)

    return _make_output(out_data, (x,), backward)


# --------------------------------------------------------------------------- #
# Losses (functional form)
# --------------------------------------------------------------------------- #
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``(N, C)`` logits and integer class targets.

    World-batched ``(world, N, C)`` logits with ``(world, N)`` targets return
    the per-world loss *vector* ``(world,)``; each entry is bit-identical to
    the scalar loss the per-rank loop computes, and seeding ``backward`` with
    ``np.ones(world)`` reproduces the per-rank unit seeds.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    if logits.ndim == 3:
        world, n = logits.shape[0], logits.shape[1]
        picked = log_probs[
            np.arange(world)[:, None], np.arange(n)[None, :], targets
        ]
        return -picked.mean(axis=1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.dtype))
    return (diff * diff).mean()


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy of raw logits."""
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
