"""Compute-precision registry for the tensor engine.

The reproduction historically computed in ``float64`` end to end.  Training at
scale, however, trades precision for speed deliberately (the paper's testbed
trains in fp32; only the *wire* representation is compressed further), so the
tensor engine exposes a process-wide **default compute dtype**:

* ``float64`` (the default) keeps every result bit-identical to the historical
  behaviour — all committed benchmark values remain valid;
* ``float32`` halves memory traffic and roughly doubles SIMD throughput for
  the numpy kernels underneath, at a documented accuracy tolerance.

The default is consumed by :func:`repro.tensorlib.tensor._as_array` (and hence
every tensor ever constructed), the weight initialisers, the synthetic
datasets, the DDP gradient arenas and the codec payload decode paths, so
setting it once — usually through ``ExperimentConfig.dtype``, which wraps the
whole run in :func:`default_dtype` — flips the entire compute path.

Wire-size accounting is *not* affected: payload byte counts model the fp32
wire format of real collectives regardless of the local compute precision, so
communication volumes and modeled times stay identical across compute dtypes.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: The dtypes the compute path may run in.
SUPPORTED_DTYPES = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

_DEFAULT_DTYPE = np.dtype(np.float64)


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise a dtype spec (``"float32"``, ``np.float64``, dtype) to a dtype.

    Raises ``KeyError`` for anything outside the supported compute dtypes, so
    configuration typos fail loudly instead of silently computing in an
    unintended precision.
    """
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise KeyError(
            f"unsupported compute dtype {dtype!r}; supported: {sorted(SUPPORTED_DTYPES)}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The process-wide compute dtype new tensors default to."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: DTypeLike) -> None:
    """Set the process-wide compute dtype (``"float32"`` or ``"float64"``)."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)


@contextlib.contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Scoped compute dtype: restores the previous default on exit.

    This is how :func:`repro.simulation.experiment.run_experiment` applies
    ``ExperimentConfig.dtype`` — the setting cannot leak across experiments
    even when a run raises.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        _DEFAULT_DTYPE = previous


def float_dtype_of(array: np.ndarray) -> np.dtype:
    """The compute dtype implied by an array: its own when it is a supported
    float dtype, the process default otherwise (ints, bools, float16)."""
    dtype = array.dtype
    if dtype.name in SUPPORTED_DTYPES:
        return dtype
    return _DEFAULT_DTYPE


def as_compute_array(value, dtype: Union[np.dtype, None] = None) -> np.ndarray:
    """``np.asarray`` into a compute dtype without copying when possible.

    Arrays already carrying the requested (or, with ``dtype=None``, their own
    supported float) dtype are returned as-is — the no-copy guarantee the
    gradient plumbing relies on.
    """
    if isinstance(value, np.ndarray):
        target = float_dtype_of(value) if dtype is None else dtype
        if value.dtype == target:
            return value
        return value.astype(target)
    return np.asarray(value, dtype=dtype or _DEFAULT_DTYPE)
