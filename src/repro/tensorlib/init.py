"""Weight initialisation schemes used by the model zoo.

All initialisers take an explicit :class:`numpy.random.Generator` so that model
construction is deterministic given a seed — a requirement for the distributed
data-parallel simulator, where every rank must start from bit-identical
replicas (as DDP guarantees by broadcasting rank-0 weights).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.tensorlib.dtypes import get_default_dtype


def _in_compute_dtype(values: np.ndarray) -> np.ndarray:
    """Cast freshly drawn float64 samples into the process compute dtype.

    A no-op under the default float64 (so historical initial weights are
    bit-identical); under float32 the cast happens once at construction time,
    which keeps every forward/backward afterwards in float32.
    """
    return np.asarray(values, dtype=get_default_dtype())


def _fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense and convolutional weight shapes."""
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    receptive_field = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def kaiming_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation, appropriate for ReLU networks (VGG/ResNet)."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return _in_compute_dtype(rng.normal(0.0, std, size=tuple(shape)))


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _in_compute_dtype(rng.uniform(-bound, bound, size=tuple(shape)))


def xavier_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal initialisation, appropriate for tanh/GELU networks (ViT)."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _in_compute_dtype(rng.normal(0.0, std, size=tuple(shape)))


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return _in_compute_dtype(rng.uniform(-bound, bound, size=tuple(shape)))


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shifts)."""
    return np.zeros(tuple(shape), dtype=get_default_dtype())


def ones(shape: Sequence[int]) -> np.ndarray:
    """All-one initialisation (batch-norm / layer-norm scales)."""
    return np.ones(tuple(shape), dtype=get_default_dtype())


def truncated_normal(shape: Sequence[int], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated normal initialisation at ±2 std, as used for ViT embeddings."""
    values = rng.normal(0.0, std, size=tuple(shape))
    return _in_compute_dtype(np.clip(values, -2 * std, 2 * std))
