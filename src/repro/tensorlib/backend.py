"""Pluggable array-API backend seam for the tensor engine.

The reproduction's numerics are pinned to numpy: every committed golden trace
and benchmark number was produced by numpy kernels, and the float64 path is
required to stay bit-identical across refactors.  At the same time the two
known hot spots of a training step — the conv weight-gradient contraction and
the ``col2im`` strided scatter-add — are exactly the kind of kernel an
accelerated array library executes much faster.

This module separates the *reference scheme* from its *accelerated
implementations* (the discipline the Wang-Landau acceleration literature
applies to stochastic approximation: accuracy control stays pinned while the
execution strategy varies):

* :class:`NumpyBackend` — the reference.  Every other backend is measured
  against it; selecting it is always safe.
* :class:`NumbaBackend` — JIT-compiles the two hot-spot kernels with plain
  sequential accumulation loops (no fastmath, no reassociation).  On
  construction it *probes* each JIT kernel against the numpy reference on
  random inputs and silently falls back to numpy for any kernel that is not
  bit-identical on this platform, so selecting numba can change speed but
  never results.
* :class:`TorchBackend` / :class:`CupyBackend` — thin adapters over optional
  GPU-capable libraries.  They are auto-detected conveniences and make **no**
  bit-identity promise (different BLAS, different reduction orders); the
  golden-trace harness is the guard rail if they are ever used for frozen
  workloads.

None of the optional libraries is required: creating a backend whose library
is missing falls back to :class:`NumpyBackend` with a logged warning, so
``REPRO_BACKEND=numba`` on a numpy-only host degrades gracefully.

Selection
---------
The process-wide active backend is resolved lazily from the
``REPRO_BACKEND`` environment variable (default ``numpy``) and can be changed
with :func:`set_backend` or scoped with :func:`use_backend`.  Experiment runs
select a backend per run through ``ExperimentConfig.backend``.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import logging
import os
from typing import Iterator, List, Optional, Union

import numpy as np

logger = logging.getLogger(__name__)

#: Environment variable naming the process-default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Names accepted by :func:`create_backend` / ``ExperimentConfig.backend``.
KNOWN_BACKENDS = ("numpy", "numba", "torch", "cupy")


class NumpyBackend:
    """The reference backend: a minimal array-API surface over numpy.

    The protocol is deliberately small — the contractions, pad/take data
    movement, reductions and an RNG bridge — because that is the complete set
    of numpy entry points the tensor engine's hot paths go through.  Methods
    accept and return ``np.ndarray``; accelerated subclasses may convert
    internally but must hand back numpy arrays.
    """

    name = "numpy"

    # ------------------------------------------------------------------ #
    # Contractions
    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def pad(self, a: np.ndarray, pad_width) -> np.ndarray:
        return np.pad(a, pad_width)

    def take(self, a: np.ndarray, indices: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
        return np.take(a, indices, axis=axis)

    # ------------------------------------------------------------------ #
    # Reductions (numpy ufunc reductions: the bit-identity reference)
    # ------------------------------------------------------------------ #
    def sum(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.sum(a, axis=axis, keepdims=keepdims)

    def mean(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.mean(a, axis=axis, keepdims=keepdims)

    def amax(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.amax(a, axis=axis, keepdims=keepdims)

    def amin(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.amin(a, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # RNG bridge
    # ------------------------------------------------------------------ #
    def rng(self, seed: Optional[int] = None) -> np.random.Generator:
        """A numpy ``Generator``: all backends share numpy's RNG streams so
        stochastic codecs and dropout draw identical sequences regardless of
        which backend executes the contractions."""
        return np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Hot-spot kernels (the seams accelerated backends override)
    # ------------------------------------------------------------------ #
    def conv_weight_grad(self, grad_mat: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Convolution weight-gradient contraction, ``(O, N*L) @ (N*L, K)``.

        ``grad_mat``/``cols`` are either the per-rank ``(N, L, O)`` /
        ``(N, L, K)`` layout or the world-batched ``(W, N, L, O)`` /
        ``(W, N, L, K)`` layout.  Both dispatch to GEMM with the sample and
        window axes fused into the single contraction axis; the world axis
        stays a *batch* axis (numpy runs one GEMM per slice), so the batched
        result is bit-identical to calling the per-rank kernel per world.
        """
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = grad_mat.transpose(0, 3, 1, 2).reshape(world, o, n * length)
            return np.matmul(gm, cols.reshape(world, n * length, -1))
        n, length, o = grad_mat.shape
        gm = grad_mat.transpose(2, 0, 1).reshape(o, n * length)
        return np.matmul(gm, cols.reshape(n * length, -1))

    def col2im_scatter_add(
        self, padded: np.ndarray, cols: np.ndarray, sh: int, sw: int, out_h: int, out_w: int
    ) -> None:
        """The ordered ``kh*kw`` scatter-add of :func:`repro.tensorlib.functional.col2im`.

        ``cols`` is the ``(kh, kw, N, C, out_h, out_w)`` re-layout; additions
        run in ``(i, j)``-major order, which defines the reference summation
        order every accelerated implementation must reproduce.
        """
        kh, kw = cols.shape[0], cols.shape[1]
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[i, j]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} name={self.name!r}>"


class NumbaBackend(NumpyBackend):
    """Numba-accelerated backend: JITs the two hot-spot kernels.

    The col2im kernel uses plain sequential loops (no ``fastmath``, no
    parallel reduction) in the same ``(i, j)``-major order as the numpy
    reference; the weight-grad kernel lowers to the same GEMM shape the numpy
    reference dispatches.  Because compilers and BLAS builds may still differ
    in ways we cannot see, each kernel is probed for bit-identity against
    :class:`NumpyBackend` on random float64 inputs at construction time; a
    kernel that fails its probe is disabled (numpy is used instead) with a
    logged warning.  Selecting this backend can therefore change speed but
    never numbers.
    """

    name = "numba"

    def __init__(self) -> None:
        import numba  # raises ImportError when unavailable

        njit = numba.njit

        @njit(cache=False)
        def _conv_weight_grad(gm, cols2):  # pragma: no cover - jit
            # (O, N*L) @ (N*L, K): numba lowers np.dot to BLAS, the same
            # routine the numpy reference dispatches to; the probe verifies
            # the two builds actually agree bit-for-bit on this host.
            return np.dot(gm, cols2)

        @njit(cache=False)
        def _col2im_scatter(padded, cols, sh, sw):  # pragma: no cover - jit
            kh, kw, n, c, oh, ow = cols.shape
            for i in range(kh):
                for j in range(kw):
                    for a in range(n):
                        for b in range(c):
                            for t in range(oh):
                                for u in range(ow):
                                    padded[a, b, i + sh * t, j + sw * u] += cols[i, j, a, b, t, u]

        self._conv_weight_grad_jit = _conv_weight_grad
        self._col2im_scatter_jit = _col2im_scatter
        self._jit_weight_grad_ok = self._probe_weight_grad()
        self._jit_col2im_ok = self._probe_col2im()

    # ------------------------------------------------------------------ #
    def _probe_weight_grad(self) -> bool:
        rng = np.random.default_rng(0)
        grad_mat = rng.standard_normal((3, 5, 4))
        cols = rng.standard_normal((3, 5, 7))
        reference = NumpyBackend.conv_weight_grad(self, grad_mat, cols)
        gm = np.ascontiguousarray(grad_mat.transpose(2, 0, 1).reshape(4, 15))
        out = self._conv_weight_grad_jit(gm, cols.reshape(15, 7))
        if not np.array_equal(out, reference):
            logger.warning(
                "numba conv weight-grad kernel is not bit-identical to numpy on "
                "this platform; using the numpy reference for it"
            )
            return False
        return True

    def _probe_col2im(self) -> bool:
        rng = np.random.default_rng(1)
        cols = rng.standard_normal((3, 3, 2, 2, 4, 4))
        reference = np.zeros((2, 2, 10, 10))
        NumpyBackend.col2im_scatter_add(self, reference, cols, 2, 2, 4, 4)
        probe = np.zeros_like(reference)
        self._col2im_scatter_jit(probe, cols, 2, 2)
        if not np.array_equal(probe, reference):
            logger.warning(
                "numba col2im scatter kernel is not bit-identical to numpy on "
                "this platform; using the numpy reference for it"
            )
            return False
        return True

    # ------------------------------------------------------------------ #
    def conv_weight_grad(self, grad_mat: np.ndarray, cols: np.ndarray) -> np.ndarray:
        if not self._jit_weight_grad_ok:
            return super().conv_weight_grad(grad_mat, cols)
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = np.ascontiguousarray(grad_mat.transpose(0, 3, 1, 2).reshape(world, o, n * length))
            cols3 = np.ascontiguousarray(cols.reshape(world, n * length, -1))
            out = np.empty((world, o, cols3.shape[-1]), dtype=grad_mat.dtype)
            for w in range(world):
                out[w] = self._conv_weight_grad_jit(gm[w], cols3[w])
            return out
        n, length, o = grad_mat.shape
        gm = np.ascontiguousarray(grad_mat.transpose(2, 0, 1).reshape(o, n * length))
        return self._conv_weight_grad_jit(gm, np.ascontiguousarray(cols.reshape(n * length, -1)))

    def col2im_scatter_add(
        self, padded: np.ndarray, cols: np.ndarray, sh: int, sw: int, out_h: int, out_w: int
    ) -> None:
        if not self._jit_col2im_ok:
            super().col2im_scatter_add(padded, cols, sh, sw, out_h, out_w)
            return
        self._col2im_scatter_jit(padded, np.ascontiguousarray(cols), sh, sw)


class TorchBackend(NumpyBackend):
    """Thin adapter over an installed torch (CPU tensors, numpy in/out).

    Experimental: torch's BLAS and reduction orders differ from numpy's, so
    this backend makes no bit-identity promise — the golden-trace harness is
    the guard rail.  Auto-detected; absent torch falls back to numpy.
    """

    name = "torch"

    def __init__(self) -> None:
        import torch  # raises ImportError when unavailable

        self._torch = torch

    def _to(self, a: np.ndarray):
        return self._torch.from_numpy(np.ascontiguousarray(a))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._torch.matmul(self._to(a), self._to(b)).numpy()

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return self._torch.einsum(subscripts, *[self._to(op) for op in operands]).numpy()


class CupyBackend(NumpyBackend):
    """Thin adapter over an installed cupy (GPU arrays, numpy in/out).

    Experimental, same caveats as :class:`TorchBackend`; the device round trip
    per call means it only pays off for large contractions.
    """

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # raises ImportError when unavailable

        self._cupy = cupy

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.matmul(cp.asarray(a), cp.asarray(b)))

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.einsum(subscripts, *[cp.asarray(op) for op in operands]))


#: name -> backend class
_BACKEND_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

#: name -> module that must be importable for the backend to work.
_BACKEND_REQUIRES = {"numba": "numba", "torch": "torch", "cupy": "cupy"}

_ACTIVE: Optional[NumpyBackend] = None


def available_backends() -> List[str]:
    """Names of the backends whose libraries are importable on this host."""
    names = ["numpy"]
    for name, module in _BACKEND_REQUIRES.items():
        if importlib.util.find_spec(module) is not None:
            names.append(name)
    return names


def create_backend(name: str) -> NumpyBackend:
    """Instantiate a backend by name, falling back to numpy when unavailable.

    Unknown names raise ``KeyError`` (a configuration typo must fail loudly);
    a *known* backend whose optional library is missing — or whose
    construction fails — degrades to :class:`NumpyBackend` with a logged
    warning, so environment differences change speed, never behaviour.
    """
    if name not in _BACKEND_CLASSES:
        raise KeyError(f"unknown backend {name!r}; known backends: {sorted(_BACKEND_CLASSES)}")
    try:
        return _BACKEND_CLASSES[name]()
    except ImportError:
        logger.warning(
            "backend %r unavailable (%s is not installed); falling back to numpy",
            name,
            _BACKEND_REQUIRES.get(name, name),
        )
    except Exception as error:  # pragma: no cover - defensive
        logger.warning("backend %r failed to initialise (%s); falling back to numpy", name, error)
    return NumpyBackend()


def _resolve_default() -> NumpyBackend:
    name = os.environ.get(BACKEND_ENV_VAR, "numpy").strip() or "numpy"
    if name not in _BACKEND_CLASSES:
        logger.warning(
            "%s=%r names an unknown backend (known: %s); falling back to numpy",
            BACKEND_ENV_VAR,
            name,
            sorted(_BACKEND_CLASSES),
        )
        return NumpyBackend()
    return create_backend(name)


def get_backend() -> NumpyBackend:
    """The process-wide active backend (lazily resolved from ``REPRO_BACKEND``)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve_default()
    return _ACTIVE


def set_backend(backend: Union[str, NumpyBackend, None]) -> NumpyBackend:
    """Set the process-wide backend.

    Accepts a name (``"numpy"``, ``"numba"``, ...), a backend instance, or
    ``None`` to re-resolve from the environment.  Returns the backend that is
    now active (which may be the numpy fallback when the requested optional
    library is missing).
    """
    global _ACTIVE
    if backend is None:
        _ACTIVE = _resolve_default()
    elif isinstance(backend, str):
        _ACTIVE = create_backend(backend)
    else:
        _ACTIVE = backend
    return _ACTIVE


@contextlib.contextmanager
def use_backend(backend: Union[str, NumpyBackend, None]) -> Iterator[NumpyBackend]:
    """Scoped backend selection: restores the previous backend on exit.

    ``use_backend(None)`` is a no-op context (the current backend stays
    active) — the convention ``ExperimentConfig.backend = None`` relies on.
    """
    global _ACTIVE
    if backend is None:
        yield get_backend()
        return
    previous = _ACTIVE
    active = set_backend(backend)
    try:
        yield active
    finally:
        _ACTIVE = previous
