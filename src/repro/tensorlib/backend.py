"""Pluggable array-API backend seam for the tensor engine.

The reproduction's numerics are pinned to numpy: every committed golden trace
and benchmark number was produced by numpy kernels, and the float64 path is
required to stay bit-identical across refactors.  At the same time the hot
spots of a training step — the im2col patch gather, the conv weight-gradient
contraction, the ``col2im`` strided scatter-add, the pooling window reductions
and the fused-norm statistics — are exactly the kind of kernel an accelerated
array library executes much faster.

This module separates the *reference scheme* from its *accelerated
implementations* (the discipline the Wang-Landau acceleration literature
applies to stochastic approximation: accuracy control stays pinned while the
execution strategy varies):

* :class:`NumpyBackend` — the reference.  Every other backend is measured
  against it; selecting it is always safe.
* :class:`NumbaBackend` — JIT-compiles the hot-spot kernels with plain
  sequential accumulation loops (no fastmath, no reassociation; reductions
  replay numpy's pairwise summation tree).  On construction it *probes* each
  JIT kernel against the numpy reference on random inputs and silently falls
  back to numpy for any kernel that is not bit-identical on this platform, so
  selecting numba can change speed but never results.
* :class:`TorchBackend` / :class:`CupyBackend` — adapters over optional
  GPU-capable libraries routing the full conv/pool/norm kernel set.  Each
  kernel call converts its operands to device tensors once, runs every
  internal step device-resident and converts the result back once, so the
  transfer cost is amortised per kernel call rather than per array op.  They
  make **no** bit-identity promise (different BLAS, different reduction
  orders); the golden-trace harness is the guard rail if they are ever used
  for frozen workloads.

None of the optional libraries is required: creating a backend whose library
is missing falls back to :class:`NumpyBackend` with a warning logged **once
per process** and the reason recorded on the returned instance
(:attr:`NumpyBackend.fallback_from` / :attr:`NumpyBackend.fallback_reason`),
so ``REPRO_BACKEND=numba`` on a numpy-only host degrades gracefully and
``python -m repro backends`` can explain why.

Selection
---------
The process-wide active backend is resolved lazily from the
``REPRO_BACKEND`` environment variable (default ``numpy``) and can be changed
with :func:`set_backend` or scoped with :func:`use_backend`.  Experiment runs
select a backend per run through ``ExperimentConfig.backend``.  Backends
named by string resolve through a process-level cache
(:func:`shared_backend`), so JIT compilation and bit-identity probes are paid
once per process — campaign pool workers warm the cache in their initializer
and every subsequent cell reuses the compiled kernels.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.util
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

logger = logging.getLogger(__name__)

#: Environment variable naming the process-default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Names accepted by :func:`create_backend` / ``ExperimentConfig.backend``.
KNOWN_BACKENDS = ("numpy", "numba", "torch", "cupy")

#: The routed hot-spot kernels every backend may override.
HOT_KERNELS = (
    "matmul",
    "einsum",
    "im2col_gather",
    "conv_weight_grad",
    "col2im_scatter_add",
    "pool_reduce",
    "fused_norm_stats",
    "fused_norm_backward",
)


def _gather_index_plan(
    channels: int,
    padded_h: int,
    padded_w: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Flat per-image source indices of the im2col gather.

    Element ``t`` of the returned ``int64`` vector is the offset — inside one
    C-contiguous ``(C, padded_h, padded_w)`` image — of the value that lands
    at flat output position ``t`` of the ``(out_h*out_w, C*kh*kw)`` patch
    matrix.  Pure integer bookkeeping shared by the numba gather kernel and
    its tests; computing it once per ``(shape, kernel, stride, padding)``
    geometry is what the backend-side plan cache amortises.
    """
    kh, kw = kernel
    sh, sw = stride
    out_h, out_w = out_hw
    h = (
        (np.arange(out_h, dtype=np.int64) * sh)[:, None, None, None, None]
        + np.arange(kh, dtype=np.int64)[None, None, None, :, None]
    )
    w = (
        (np.arange(out_w, dtype=np.int64) * sw)[None, :, None, None, None]
        + np.arange(kw, dtype=np.int64)[None, None, None, None, :]
    )
    c = np.arange(channels, dtype=np.int64)[None, None, :, None, None]
    # Output layout: rows (out_h, out_w), columns (c, kh, kw) — exactly the
    # (N, L, C*kh*kw) ordering im2col hands the conv/pool GEMMs.
    return np.ascontiguousarray(
        (c * (padded_h * padded_w) + h * padded_w + w).reshape(-1)
    )


class NumpyBackend:
    """The reference backend: a minimal array-API surface over numpy.

    The protocol is deliberately small — the contractions, the im2col/col2im
    data movement, the pooling and normalisation reductions and an RNG bridge
    — because that is the complete set of numpy entry points the tensor
    engine's hot paths go through.  Methods accept and return ``np.ndarray``;
    accelerated subclasses may convert internally but must hand back numpy
    arrays.
    """

    name = "numpy"

    #: Set on instances returned as a degradation target: the backend name the
    #: caller asked for and why it could not be provided.  ``None`` when this
    #: instance was requested directly.
    fallback_from: Optional[str] = None
    fallback_reason: Optional[str] = None

    def kernel_status(self) -> Dict[str, str]:
        """Per-kernel routing description (``{kernel: implementation note}``)."""
        return {kernel: "numpy reference" for kernel in HOT_KERNELS}

    # ------------------------------------------------------------------ #
    # Contractions
    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def pad(self, a: np.ndarray, pad_width) -> np.ndarray:
        return np.pad(a, pad_width)

    def take(self, a: np.ndarray, indices: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
        return np.take(a, indices, axis=axis)

    # ------------------------------------------------------------------ #
    # Reductions (numpy ufunc reductions: the bit-identity reference)
    # ------------------------------------------------------------------ #
    def sum(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.sum(a, axis=axis, keepdims=keepdims)

    def mean(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.mean(a, axis=axis, keepdims=keepdims)

    def amax(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.amax(a, axis=axis, keepdims=keepdims)

    def amin(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return np.amin(a, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # RNG bridge
    # ------------------------------------------------------------------ #
    def rng(self, seed: Optional[int] = None) -> np.random.Generator:
        """A numpy ``Generator``: all backends share numpy's RNG streams so
        stochastic codecs and dropout draw identical sequences regardless of
        which backend executes the contractions."""
        return np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Hot-spot kernels (the seams accelerated backends override)
    # ------------------------------------------------------------------ #
    def im2col_gather(
        self,
        padded: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        out_hw: Tuple[int, int],
    ) -> np.ndarray:
        """Gather ``(N, C, Hp, Wp)`` padded images into contiguous patches.

        Returns the ``(N, out_h*out_w, C*kh*kw)`` patch matrix the conv/pool
        GEMMs consume.  Pure data movement — any correct gather is
        bit-identical — so accelerated backends only have to get the index
        arithmetic right, which the construction-time probe verifies.
        """
        n, c = padded.shape[0], padded.shape[1]
        kh, kw = kernel
        sh, sw = stride
        out_h, out_w = out_hw
        strides = padded.strides
        view = np.lib.stride_tricks.as_strided(
            padded,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
            writeable=False,
        )
        cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
        return np.ascontiguousarray(cols)

    def conv_weight_grad(self, grad_mat: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Convolution weight-gradient contraction, ``(O, N*L) @ (N*L, K)``.

        ``grad_mat``/``cols`` are either the per-rank ``(N, L, O)`` /
        ``(N, L, K)`` layout or the world-batched ``(W, N, L, O)`` /
        ``(W, N, L, K)`` layout.  Both dispatch to GEMM with the sample and
        window axes fused into the single contraction axis; the world axis
        stays a *batch* axis (numpy runs one GEMM per slice), so the batched
        result is bit-identical to calling the per-rank kernel per world.
        """
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = grad_mat.transpose(0, 3, 1, 2).reshape(world, o, n * length)
            return np.matmul(gm, cols.reshape(world, n * length, -1))
        n, length, o = grad_mat.shape
        gm = grad_mat.transpose(2, 0, 1).reshape(o, n * length)
        return np.matmul(gm, cols.reshape(n * length, -1))

    def col2im_scatter_add(
        self, padded: np.ndarray, cols: np.ndarray, sh: int, sw: int, out_h: int, out_w: int
    ) -> None:
        """The ordered ``kh*kw`` scatter-add of :func:`repro.tensorlib.functional.col2im`.

        ``cols`` is the ``(kh, kw, N, C, out_h, out_w)`` re-layout; additions
        run in ``(i, j)``-major order, which defines the reference summation
        order every accelerated implementation must reproduce.
        """
        kh, kw = cols.shape[0], cols.shape[1]
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[i, j]

    def pool_reduce(
        self, cols: np.ndarray, op: str
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Reduce pooling windows: ``cols`` is ``(flat, L, K)``.

        ``op="max"`` returns ``(values, argmax)`` — the argmax (first maximal
        position, numpy convention) is what the pooling backward scatters
        through; ``op="mean"`` returns ``(values, None)``.
        """
        if op == "max":
            argmax = cols.argmax(axis=2)
            values = np.take_along_axis(cols, argmax[..., None], axis=2)[..., 0]
            return values, argmax
        if op == "mean":
            return cols.mean(axis=2), None
        raise ValueError(f"unknown pool_reduce op {op!r}; expected 'max' or 'mean'")

    def fused_norm_stats(
        self, data: np.ndarray, axes: Tuple[int, ...], eps: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Normalisation statistics over ``axes``: ``(mean, var, inv_std, x_hat)``.

        All returned arrays keep the reduced axes as size-1 dimensions except
        ``x_hat``, which has ``data``'s shape.  This is the forward half of
        the fused batch/layer-norm path.
        """
        mean = data.mean(axis=axes, keepdims=True)
        centered = data - mean
        var = np.mean(centered * centered, axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = centered * inv_std
        return mean, var, inv_std, x_hat

    def fused_norm_backward(
        self,
        grad: np.ndarray,
        w: np.ndarray,
        x_hat: np.ndarray,
        inv_std: np.ndarray,
        axes: Tuple[int, ...],
    ) -> np.ndarray:
        """Input gradient of the fused normalisation (analytic batch-norm form).

        ``w`` is the scale parameter already reshaped to broadcast against
        ``grad``; ``x_hat``/``inv_std`` are the forward statistics.
        """
        g_hat = grad * w
        mean_g = g_hat.mean(axis=axes, keepdims=True)
        mean_gx = (g_hat * x_hat).mean(axis=axes, keepdims=True)
        return inv_std * (g_hat - mean_g - x_hat * mean_gx)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} name={self.name!r}>"


class NumbaBackend(NumpyBackend):
    """Numba-accelerated backend: JITs the hot-spot kernels.

    Every kernel keeps numpy's exact summation semantics — the col2im
    scatter-add runs its additions in the same ``(i, j)``-major order, the
    pooling/normalisation reductions replay numpy's pairwise-summation tree,
    and the im2col gather and pool max are pure data movement.  Because
    compilers and BLAS builds may still differ in ways we cannot see, each
    kernel is probed for bit-identity against :class:`NumpyBackend` on random
    float64 *and* float32 inputs at construction time; a kernel that fails its
    probe (or fails to compile) is disabled — numpy is used instead — with a
    logged warning and the reason recorded in :meth:`kernel_status`.
    Selecting this backend can therefore change speed but never numbers.

    The im2col gather keeps a per-geometry index plan cache keyed on
    ``(padded shape, kernel, stride, output size)``: repeated training steps
    over the same layer reuse the precomputed source indices and only pay the
    JIT'ed flat gather.

    The fused-norm kernels accelerate the last-axis (LayerNorm-shaped)
    reduction; channel-axis reductions (BatchNorm over ``(N, H, W)``) fall
    through to the numpy reference, whose multi-axis accumulation order a
    sequential loop cannot cheaply reproduce bit-exactly.
    """

    name = "numba"

    #: Reduction sizes above this use numpy (the JIT pairwise tree matches
    #: numpy's PW_BLOCKSIZE=128 base case plus its recursive split).
    _PAIRWISE_BLOCK = 128

    #: Gather plans are tiny relative to the arrays they index, but unbounded
    #: growth over a long multi-model campaign is still a leak; clear-on-cap
    #: keeps the common case (a handful of conv geometries per model) free.
    _PLAN_CACHE_CAP = 64

    def __init__(self) -> None:
        import numba  # raises ImportError when unavailable

        njit = numba.njit

        @njit(cache=False)
        def _conv_weight_grad(gm, cols2):  # pragma: no cover - jit
            # (O, N*L) @ (N*L, K): numba lowers np.dot to BLAS, the same
            # routine the numpy reference dispatches to; the probe verifies
            # the two builds actually agree bit-for-bit on this host.
            return np.dot(gm, cols2)

        @njit(cache=False)
        def _col2im_scatter(padded, cols, sh, sw):  # pragma: no cover - jit
            kh, kw, n, c, oh, ow = cols.shape
            for i in range(kh):
                for j in range(kw):
                    for a in range(n):
                        for b in range(c):
                            for t in range(oh):
                                for u in range(ow):
                                    padded[a, b, i + sh * t, j + sw * u] += cols[i, j, a, b, t, u]

        @njit(cache=False)
        def _gather(flat, idx, out):  # pragma: no cover - jit
            # Pure gather: out[i, t] = flat[i, idx[t]].  Bit-identical by
            # construction as long as the index plan is right (probed).
            n = flat.shape[0]
            p = idx.shape[0]
            for i in range(n):
                row = flat[i]
                dst = out[i]
                for t in range(p):
                    dst[t] = row[idx[t]]

        @njit(cache=False)
        def _pairwise(a, lo, n, zero):  # pragma: no cover - jit
            # numpy's pairwise summation tree (umath pairwise_sum): naive
            # below 8 elements, the 8-accumulator unrolled loop up to the
            # 128-element block size, and the halve-to-a-multiple-of-8
            # recursion above.  Replaying the exact tree is what makes the
            # JIT reductions bit-identical to numpy's.
            if n < 8:
                res = zero
                for i in range(n):
                    res += a[lo + i]
                return res
            if n <= 128:
                r0 = a[lo]
                r1 = a[lo + 1]
                r2 = a[lo + 2]
                r3 = a[lo + 3]
                r4 = a[lo + 4]
                r5 = a[lo + 5]
                r6 = a[lo + 6]
                r7 = a[lo + 7]
                i = 8
                limit = n - (n % 8)
                while i < limit:
                    r0 += a[lo + i]
                    r1 += a[lo + i + 1]
                    r2 += a[lo + i + 2]
                    r3 += a[lo + i + 3]
                    r4 += a[lo + i + 4]
                    r5 += a[lo + i + 5]
                    r6 += a[lo + i + 6]
                    r7 += a[lo + i + 7]
                    i += 8
                res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
                while i < n:
                    res += a[lo + i]
                    i += 1
                return res
            n2 = (n // 2) - ((n // 2) % 8)
            return _pairwise(a, lo, n2, zero) + _pairwise(a, lo + n2, n - n2, zero)

        @njit(cache=False)
        def _pool_max(cols, values, argmax):  # pragma: no cover - jit
            flat, length, k = cols.shape
            for i in range(flat):
                for l in range(length):
                    window = cols[i, l]
                    best = window[0]
                    arg = 0
                    for j in range(1, k):
                        if window[j] > best:
                            best = window[j]
                            arg = j
                    values[i, l] = best
                    argmax[i, l] = arg

        @njit(cache=False)
        def _pool_mean(cols, values, zero, k_t):  # pragma: no cover - jit
            flat, length, k = cols.shape
            for i in range(flat):
                for l in range(length):
                    values[i, l] = _pairwise(cols[i, l], 0, k, zero) / k_t

        @njit(cache=False)
        def _norm_stats(data, mean, var, inv_std, x_hat, tmp, eps_t, zero, one, d_t):  # pragma: no cover - jit
            m, d = data.shape
            for i in range(m):
                row = data[i]
                xr = x_hat[i]
                mu = _pairwise(row, 0, d, zero) / d_t
                for j in range(d):
                    cen = row[j] - mu
                    xr[j] = cen
                    tmp[j] = cen * cen
                v = _pairwise(tmp, 0, d, zero) / d_t
                s = one / np.sqrt(v + eps_t)
                for j in range(d):
                    xr[j] = xr[j] * s
                mean[i] = mu
                var[i] = v
                inv_std[i] = s

        @njit(cache=False)
        def _norm_backward(g_hat, x_hat, inv_std, out, tmp, zero, d_t):  # pragma: no cover - jit
            m, d = g_hat.shape
            for i in range(m):
                g = g_hat[i]
                xh = x_hat[i]
                o = out[i]
                mean_g = _pairwise(g, 0, d, zero) / d_t
                for j in range(d):
                    tmp[j] = g[j] * xh[j]
                mean_gx = _pairwise(tmp, 0, d, zero) / d_t
                s = inv_std[i]
                for j in range(d):
                    o[j] = s * ((g[j] - mean_g) - xh[j] * mean_gx)

        self._conv_weight_grad_jit = _conv_weight_grad
        self._col2im_scatter_jit = _col2im_scatter
        self._gather_jit = _gather
        self._pool_max_jit = _pool_max
        self._pool_mean_jit = _pool_mean
        self._norm_stats_jit = _norm_stats
        self._norm_backward_jit = _norm_backward

        self._gather_plans: Dict[Tuple, np.ndarray] = {}
        self._kernel_notes: Dict[str, str] = {}
        self._jit_weight_grad_ok = self._probe("conv_weight_grad", self._probe_weight_grad)
        self._jit_col2im_ok = self._probe("col2im_scatter_add", self._probe_col2im)
        self._jit_gather_ok = self._probe("im2col_gather", self._probe_gather)
        self._jit_pool_ok = self._probe("pool_reduce", self._probe_pool)
        self._jit_norm_ok = self._probe("fused_norm_stats", self._probe_norm)
        self._kernel_notes.setdefault(
            "fused_norm_backward", self._kernel_notes.get("fused_norm_stats", "jit")
        )

    # ------------------------------------------------------------------ #
    # Probe harness
    # ------------------------------------------------------------------ #
    def _probe(self, kernel: str, probe) -> bool:
        """Run one bit-identity probe; compile/accuracy failures degrade the kernel."""
        try:
            probe()
        except Exception as error:  # numba compile errors, platform quirks
            self._kernel_notes[kernel] = f"numpy (jit failed: {type(error).__name__}: {error})"
            logger.warning(
                "numba %s kernel failed to compile or probe on this platform (%s); "
                "using the numpy reference for it",
                kernel,
                error,
            )
            return False
        self._kernel_notes[kernel] = "jit"
        return True

    def _probe_weight_grad(self) -> None:
        rng = np.random.default_rng(0)
        grad_mat = rng.standard_normal((3, 5, 4))
        cols = rng.standard_normal((3, 5, 7))
        reference = NumpyBackend.conv_weight_grad(self, grad_mat, cols)
        gm = np.ascontiguousarray(grad_mat.transpose(2, 0, 1).reshape(4, 15))
        out = self._conv_weight_grad_jit(gm, cols.reshape(15, 7))
        if not np.array_equal(out, reference):
            raise AssertionError("not bit-identical to the numpy GEMM")

    def _probe_col2im(self) -> None:
        rng = np.random.default_rng(1)
        cols = rng.standard_normal((3, 3, 2, 2, 4, 4))
        reference = np.zeros((2, 2, 10, 10))
        NumpyBackend.col2im_scatter_add(self, reference, cols, 2, 2, 4, 4)
        probe = np.zeros_like(reference)
        self._col2im_scatter_jit(probe, cols, 2, 2)
        if not np.array_equal(probe, reference):
            raise AssertionError("not bit-identical to the numpy scatter order")

    def _probe_gather(self) -> None:
        rng = np.random.default_rng(2)
        for dtype in (np.float64, np.float32):
            padded = rng.standard_normal((2, 3, 9, 7)).astype(dtype)
            for kernel, stride in (((3, 2), (2, 1)), ((1, 1), (1, 1))):
                out_hw = (
                    (padded.shape[2] - kernel[0]) // stride[0] + 1,
                    (padded.shape[3] - kernel[1]) // stride[1] + 1,
                )
                reference = NumpyBackend.im2col_gather(self, padded, kernel, stride, out_hw)
                out = self._gather(padded, kernel, stride, out_hw)
                if not np.array_equal(out, reference):
                    raise AssertionError("gather index plan mismatch")

    def _probe_pool(self) -> None:
        rng = np.random.default_rng(3)
        # Window sizes hitting all pairwise base-case branches: naive (<8),
        # the unrolled block with a tail (9, 100).
        for dtype in (np.float64, np.float32):
            for k in (4, 9, 100):
                cols = rng.standard_normal((3, 5, k)).astype(dtype)
                for op in ("max", "mean"):
                    ref_values, ref_arg = NumpyBackend.pool_reduce(self, cols, op)
                    values, arg = self._pool(cols, op)
                    if not np.array_equal(values, ref_values):
                        raise AssertionError(f"pool {op} values diverge (k={k}, {dtype})")
                    if op == "max" and not np.array_equal(arg, ref_arg):
                        raise AssertionError(f"pool argmax diverges (k={k}, {dtype})")

    def _probe_norm(self) -> None:
        rng = np.random.default_rng(4)
        # 37 exercises the unrolled block + tail, 300 the recursive split.
        for dtype in (np.float64, np.float32):
            for shape in ((3, 5, 37), (2, 300)):
                data = rng.standard_normal(shape).astype(dtype)
                axes = (data.ndim - 1,)
                reference = NumpyBackend.fused_norm_stats(self, data, axes, 1e-5)
                out = self._norm_stats(data, axes, 1e-5)
                for ref, got in zip(reference, out):
                    if not np.array_equal(ref, got):
                        raise AssertionError(f"norm stats diverge ({shape}, {dtype})")
                grad = rng.standard_normal(shape).astype(dtype)
                w = rng.standard_normal(shape[-1]).astype(dtype)
                ref_gx = NumpyBackend.fused_norm_backward(
                    self, grad, w, reference[3], reference[2], axes
                )
                got_gx = self._norm_backward(grad, w, out[3], out[2], axes)
                if not np.array_equal(ref_gx, got_gx):
                    raise AssertionError(f"norm backward diverges ({shape}, {dtype})")

    # ------------------------------------------------------------------ #
    def kernel_status(self) -> Dict[str, str]:
        status = super().kernel_status()
        status.update(self._kernel_notes)
        return status

    # ------------------------------------------------------------------ #
    # Kernel dispatch (per-kernel degradation to the numpy reference)
    # ------------------------------------------------------------------ #
    def conv_weight_grad(self, grad_mat: np.ndarray, cols: np.ndarray) -> np.ndarray:
        if not self._jit_weight_grad_ok:
            return super().conv_weight_grad(grad_mat, cols)
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = np.ascontiguousarray(grad_mat.transpose(0, 3, 1, 2).reshape(world, o, n * length))
            cols3 = np.ascontiguousarray(cols.reshape(world, n * length, -1))
            out = np.empty((world, o, cols3.shape[-1]), dtype=grad_mat.dtype)
            for w in range(world):
                out[w] = self._conv_weight_grad_jit(gm[w], cols3[w])
            return out
        n, length, o = grad_mat.shape
        gm = np.ascontiguousarray(grad_mat.transpose(2, 0, 1).reshape(o, n * length))
        return self._conv_weight_grad_jit(gm, np.ascontiguousarray(cols.reshape(n * length, -1)))

    def col2im_scatter_add(
        self, padded: np.ndarray, cols: np.ndarray, sh: int, sw: int, out_h: int, out_w: int
    ) -> None:
        if not self._jit_col2im_ok:
            super().col2im_scatter_add(padded, cols, sh, sw, out_h, out_w)
            return
        self._col2im_scatter_jit(padded, np.ascontiguousarray(cols), sh, sw)

    def _gather(
        self,
        padded: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        out_hw: Tuple[int, int],
    ) -> np.ndarray:
        key = (padded.shape[1:], kernel, stride, out_hw)
        idx = self._gather_plans.get(key)
        if idx is None:
            if len(self._gather_plans) >= self._PLAN_CACHE_CAP:
                self._gather_plans.clear()
            idx = _gather_index_plan(
                padded.shape[1], padded.shape[2], padded.shape[3], kernel, stride, out_hw
            )
            self._gather_plans[key] = idx
        n = padded.shape[0]
        flat = np.ascontiguousarray(padded).reshape(n, -1)
        out = np.empty((n, idx.shape[0]), dtype=padded.dtype)
        self._gather_jit(flat, idx, out)
        kh, kw = kernel
        return out.reshape(n, out_hw[0] * out_hw[1], padded.shape[1] * kh * kw)

    def im2col_gather(
        self,
        padded: np.ndarray,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        out_hw: Tuple[int, int],
    ) -> np.ndarray:
        if not self._jit_gather_ok or padded.dtype not in (np.float64, np.float32):
            return super().im2col_gather(padded, kernel, stride, out_hw)
        return self._gather(padded, kernel, stride, out_hw)

    def _pool(self, cols: np.ndarray, op: str) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        flat, length, k = cols.shape
        cols = np.ascontiguousarray(cols)
        if op == "max":
            values = np.empty((flat, length), dtype=cols.dtype)
            argmax = np.empty((flat, length), dtype=np.int64)
            self._pool_max_jit(cols, values, argmax)
            return values, argmax
        dt = cols.dtype.type
        values = np.empty((flat, length), dtype=cols.dtype)
        self._pool_mean_jit(cols, values, dt(0.0), dt(k))
        return values, None

    def pool_reduce(
        self, cols: np.ndarray, op: str
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if (
            not self._jit_pool_ok
            or op not in ("max", "mean")
            or cols.dtype not in (np.float64, np.float32)
        ):
            return super().pool_reduce(cols, op)
        return self._pool(cols, op)

    def _norm_axes_supported(self, data: np.ndarray, axes: Tuple[int, ...]) -> bool:
        return tuple(axes) == (data.ndim - 1,) and data.dtype in (np.float64, np.float32)

    def _norm_stats(self, data: np.ndarray, axes: Tuple[int, ...], eps: float):
        d = data.shape[-1]
        lead = data.shape[:-1]
        flat = np.ascontiguousarray(data).reshape(-1, d)
        m = flat.shape[0]
        dt = data.dtype.type
        mean = np.empty(m, dtype=data.dtype)
        var = np.empty(m, dtype=data.dtype)
        inv_std = np.empty(m, dtype=data.dtype)
        x_hat = np.empty_like(flat)
        tmp = np.empty(d, dtype=data.dtype)
        self._norm_stats_jit(
            flat, mean, var, inv_std, x_hat, tmp, dt(eps), dt(0.0), dt(1.0), dt(d)
        )
        keep = lead + (1,)
        return (
            mean.reshape(keep),
            var.reshape(keep),
            inv_std.reshape(keep),
            x_hat.reshape(data.shape),
        )

    def fused_norm_stats(
        self, data: np.ndarray, axes: Tuple[int, ...], eps: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if not self._jit_norm_ok or not self._norm_axes_supported(data, axes):
            return super().fused_norm_stats(data, axes, eps)
        return self._norm_stats(data, axes, eps)

    def _norm_backward(
        self,
        grad: np.ndarray,
        w: np.ndarray,
        x_hat: np.ndarray,
        inv_std: np.ndarray,
        axes: Tuple[int, ...],
    ) -> np.ndarray:
        d = grad.shape[-1]
        # The scale broadcast happens in numpy (exact elementwise multiply);
        # the JIT accelerates the two row reductions and the fused update.
        g_hat = np.ascontiguousarray(grad * w).reshape(-1, d)
        flat_x = np.ascontiguousarray(x_hat).reshape(-1, d)
        inv_flat = np.ascontiguousarray(inv_std).reshape(-1)
        out = np.empty_like(g_hat)
        tmp = np.empty(d, dtype=g_hat.dtype)
        dt = g_hat.dtype.type
        self._norm_backward_jit(g_hat, flat_x, inv_flat, out, tmp, dt(0.0), dt(d))
        return out.reshape(grad.shape)

    def fused_norm_backward(
        self,
        grad: np.ndarray,
        w: np.ndarray,
        x_hat: np.ndarray,
        inv_std: np.ndarray,
        axes: Tuple[int, ...],
    ) -> np.ndarray:
        if not self._jit_norm_ok or not self._norm_axes_supported(grad, axes):
            return super().fused_norm_backward(grad, w, x_hat, inv_std, axes)
        return self._norm_backward(grad, w, x_hat, inv_std, axes)


class TorchBackend(NumpyBackend):
    """Adapter over an installed torch routing the full conv/pool/norm set.

    Experimental: torch's BLAS and reduction orders differ from numpy's, so
    this backend makes no bit-identity promise — the golden-trace harness
    (with a small ``--rtol``) is the guard rail.  Each kernel converts its
    numpy operands to CPU tensors once, runs every internal step on torch and
    converts back once, so the conversion overhead is per kernel call, not per
    array op.  Absent torch falls back to numpy.
    """

    name = "torch"

    def __init__(self) -> None:
        import torch  # raises ImportError when unavailable

        self._torch = torch

    def kernel_status(self) -> Dict[str, str]:
        status = super().kernel_status()
        status.update({kernel: "torch (no bit-identity promise)" for kernel in HOT_KERNELS})
        return status

    def _to(self, a: np.ndarray):
        return self._torch.from_numpy(np.ascontiguousarray(a))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._torch.matmul(self._to(a), self._to(b)).numpy()

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return self._torch.einsum(subscripts, *[self._to(op) for op in operands]).numpy()

    def im2col_gather(self, padded, kernel, stride, out_hw):
        torch = self._torch
        n, c = padded.shape[0], padded.shape[1]
        kh, kw = kernel
        sh, sw = stride
        out_h, out_w = out_hw
        t = self._to(padded)
        s = t.stride()
        view = t.as_strided(
            (n, c, out_h, out_w, kh, kw), (s[0], s[1], s[2] * sh, s[3] * sw, s[2], s[3])
        )
        cols = view.permute(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
        return cols.contiguous().numpy()

    def conv_weight_grad(self, grad_mat, cols):
        torch = self._torch
        g = self._to(grad_mat)
        c = self._to(cols)
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = g.permute(0, 3, 1, 2).reshape(world, o, n * length)
            return torch.matmul(gm, c.reshape(world, n * length, -1)).numpy()
        n, length, o = grad_mat.shape
        gm = g.permute(2, 0, 1).reshape(o, n * length)
        return torch.matmul(gm, c.reshape(n * length, -1)).numpy()

    def col2im_scatter_add(self, padded, cols, sh, sw, out_h, out_w):
        # from_numpy shares memory with the caller's output buffer, so the
        # in-place strided additions land directly in the numpy array.
        t_padded = self._torch.from_numpy(padded)
        t_cols = self._to(cols)
        kh, kw = cols.shape[0], cols.shape[1]
        for i in range(kh):
            for j in range(kw):
                t_padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += t_cols[i, j]

    def pool_reduce(self, cols, op):
        t = self._to(cols)
        if op == "max":
            values, argmax = t.max(dim=2)
            return values.numpy(), argmax.numpy()
        if op == "mean":
            return t.mean(dim=2).numpy(), None
        raise ValueError(f"unknown pool_reduce op {op!r}; expected 'max' or 'mean'")

    def fused_norm_stats(self, data, axes, eps):
        torch = self._torch
        d = self._to(data)
        mean = d.mean(dim=tuple(axes), keepdim=True)
        centered = d - mean
        var = (centered * centered).mean(dim=tuple(axes), keepdim=True)
        inv_std = 1.0 / torch.sqrt(var + eps)
        x_hat = centered * inv_std
        return mean.numpy(), var.numpy(), inv_std.numpy(), x_hat.numpy()

    def fused_norm_backward(self, grad, w, x_hat, inv_std, axes):
        g = self._to(grad)
        g_hat = g * self._to(np.broadcast_to(w, grad.shape))
        xh = self._to(x_hat)
        mean_g = g_hat.mean(dim=tuple(axes), keepdim=True)
        mean_gx = (g_hat * xh).mean(dim=tuple(axes), keepdim=True)
        return (self._to(inv_std) * (g_hat - mean_g - xh * mean_gx)).numpy()


class CupyBackend(NumpyBackend):
    """Adapter over an installed cupy routing the full conv/pool/norm set.

    Experimental, same caveats as :class:`TorchBackend`; operands cross the
    device boundary once per kernel call (in and out), so it only pays off for
    large kernels where the GPU work dwarfs the transfers.
    """

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # raises ImportError when unavailable

        self._cupy = cupy

    def kernel_status(self) -> Dict[str, str]:
        status = super().kernel_status()
        status.update({kernel: "cupy (no bit-identity promise)" for kernel in HOT_KERNELS})
        return status

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.matmul(cp.asarray(a), cp.asarray(b)))

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.einsum(subscripts, *[cp.asarray(op) for op in operands]))

    def im2col_gather(self, padded, kernel, stride, out_hw):
        cp = self._cupy
        n, c = padded.shape[0], padded.shape[1]
        kh, kw = kernel
        sh, sw = stride
        out_h, out_w = out_hw
        d = cp.asarray(np.ascontiguousarray(padded))
        strides = d.strides
        view = cp.lib.stride_tricks.as_strided(
            d,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(strides[0], strides[1], strides[2] * sh, strides[3] * sw, strides[2], strides[3]),
        )
        cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
        return cp.asnumpy(cp.ascontiguousarray(cols))

    def conv_weight_grad(self, grad_mat, cols):
        cp = self._cupy
        g = cp.asarray(grad_mat)
        c = cp.asarray(cols)
        if grad_mat.ndim == 4:
            world, n, length, o = grad_mat.shape
            gm = g.transpose(0, 3, 1, 2).reshape(world, o, n * length)
            return cp.asnumpy(cp.matmul(gm, c.reshape(world, n * length, -1)))
        n, length, o = grad_mat.shape
        gm = g.transpose(2, 0, 1).reshape(o, n * length)
        return cp.asnumpy(cp.matmul(gm, c.reshape(n * length, -1)))

    def col2im_scatter_add(self, padded, cols, sh, sw, out_h, out_w):
        cp = self._cupy
        d_padded = cp.asarray(padded)
        d_cols = cp.asarray(cols)
        kh, kw = cols.shape[0], cols.shape[1]
        for i in range(kh):
            for j in range(kw):
                d_padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += d_cols[i, j]
        padded[...] = cp.asnumpy(d_padded)

    def pool_reduce(self, cols, op):
        cp = self._cupy
        d = cp.asarray(cols)
        if op == "max":
            argmax = d.argmax(axis=2)
            values = cp.take_along_axis(d, argmax[..., None], axis=2)[..., 0]
            return cp.asnumpy(values), cp.asnumpy(argmax)
        if op == "mean":
            return cp.asnumpy(d.mean(axis=2)), None
        raise ValueError(f"unknown pool_reduce op {op!r}; expected 'max' or 'mean'")

    def fused_norm_stats(self, data, axes, eps):
        cp = self._cupy
        d = cp.asarray(data)
        mean = d.mean(axis=axes, keepdims=True)
        centered = d - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        inv_std = 1.0 / cp.sqrt(var + eps)
        x_hat = centered * inv_std
        return cp.asnumpy(mean), cp.asnumpy(var), cp.asnumpy(inv_std), cp.asnumpy(x_hat)

    def fused_norm_backward(self, grad, w, x_hat, inv_std, axes):
        cp = self._cupy
        g_hat = cp.asarray(grad) * cp.asarray(w)
        xh = cp.asarray(x_hat)
        mean_g = g_hat.mean(axis=axes, keepdims=True)
        mean_gx = (g_hat * xh).mean(axis=axes, keepdims=True)
        return cp.asnumpy(cp.asarray(inv_std) * (g_hat - mean_g - xh * mean_gx))


#: name -> backend class
_BACKEND_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

#: name -> module that must be importable for the backend to work.
_BACKEND_REQUIRES = {"numba": "numba", "torch": "torch", "cupy": "cupy"}

_ACTIVE: Optional[NumpyBackend] = None

#: Process-level cache of backends constructed by name: JIT compilation and
#: bit-identity probes are paid once, then every string-selected use (env
#: var, ``ExperimentConfig.backend``, campaign cells) reuses the instance.
_SHARED: Dict[str, NumpyBackend] = {}

#: Backend names whose missing-library degradation has already been logged;
#: the fallback is per-call but the warning is once per process.
_FALLBACK_WARNED: set = set()


def available_backends() -> List[str]:
    """Names of the backends whose libraries are importable on this host."""
    names = ["numpy"]
    for name, module in _BACKEND_REQUIRES.items():
        if importlib.util.find_spec(module) is not None:
            names.append(name)
    return names


def create_backend(name: str) -> NumpyBackend:
    """Instantiate a backend by name, falling back to numpy when unavailable.

    Unknown names raise ``KeyError`` (a configuration typo must fail loudly);
    a *known* backend whose optional library is missing — or whose
    construction fails — degrades to :class:`NumpyBackend`.  The warning is
    logged once per process per backend name; the reason is recorded on the
    returned instance (``fallback_from``/``fallback_reason``) either way, so
    ``python -m repro backends`` can report silent-looking fallbacks.
    """
    if name not in _BACKEND_CLASSES:
        raise KeyError(f"unknown backend {name!r}; known backends: {sorted(_BACKEND_CLASSES)}")
    reason = None
    try:
        return _BACKEND_CLASSES[name]()
    except ImportError:
        reason = f"{_BACKEND_REQUIRES.get(name, name)} is not installed"
    except Exception as error:  # pragma: no cover - defensive
        reason = f"failed to initialise: {error}"
    if name not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(name)
        logger.warning("backend %r unavailable (%s); falling back to numpy", name, reason)
    fallback = NumpyBackend()
    fallback.fallback_from = name
    fallback.fallback_reason = reason
    return fallback


def shared_backend(name: str) -> NumpyBackend:
    """The process-cached backend for ``name`` (constructed on first use).

    This is what string-based selection resolves through: a campaign worker
    that runs fifty cells under ``backend="numba"`` compiles and probes the
    JIT kernels exactly once.  :func:`create_backend` stays available for
    callers that need a fresh instance.
    """
    backend = _SHARED.get(name)
    if backend is None:
        backend = create_backend(name)
        _SHARED[name] = backend
    return backend


def _resolve_default() -> NumpyBackend:
    name = os.environ.get(BACKEND_ENV_VAR, "numpy").strip() or "numpy"
    if name not in _BACKEND_CLASSES:
        logger.warning(
            "%s=%r names an unknown backend (known: %s); falling back to numpy",
            BACKEND_ENV_VAR,
            name,
            sorted(_BACKEND_CLASSES),
        )
        return NumpyBackend()
    return shared_backend(name)


#: Observation hook installed by :mod:`repro.obs` while tracing is enabled:
#: a callable wrapping the active backend in a kernel-metering proxy.  This
#: is the *single* disabled-path guard for backend instrumentation — one
#: ``is not None`` check per ``get_backend()`` call.
_OBSERVER = None


def get_backend() -> NumpyBackend:
    """The process-wide active backend (lazily resolved from ``REPRO_BACKEND``)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve_default()
    if _OBSERVER is not None:
        return _OBSERVER(_ACTIVE)
    return _ACTIVE


def set_backend(backend: Union[str, NumpyBackend, None]) -> NumpyBackend:
    """Set the process-wide backend.

    Accepts a name (``"numpy"``, ``"numba"``, ...), a backend instance, or
    ``None`` to re-resolve from the environment.  Names resolve through the
    process cache (:func:`shared_backend`), so repeated selection does not
    re-pay JIT compilation.  Returns the backend that is now active (which
    may be the numpy fallback when the requested optional library is
    missing).
    """
    global _ACTIVE
    if backend is None:
        _ACTIVE = _resolve_default()
    elif isinstance(backend, str):
        _ACTIVE = shared_backend(backend)
    else:
        _ACTIVE = backend
    return _ACTIVE


@contextlib.contextmanager
def use_backend(backend: Union[str, NumpyBackend, None]) -> Iterator[NumpyBackend]:
    """Scoped backend selection: restores the previous backend on exit.

    ``use_backend(None)`` is a no-op context (the current backend stays
    active) — the convention ``ExperimentConfig.backend = None`` relies on.
    """
    global _ACTIVE
    if backend is None:
        yield get_backend()
        return
    previous = _ACTIVE
    active = set_backend(backend)
    try:
        yield active
    finally:
        _ACTIVE = previous


# --------------------------------------------------------------------------- #
# Introspection (``python -m repro backends``)
# --------------------------------------------------------------------------- #
@dataclass
class BackendInfo:
    """Probe/availability status of one known backend on this host."""

    name: str
    installed: bool
    status: str  # "reference" | "available" | "degraded-to-numpy"
    detail: str
    kernels: Dict[str, str] = field(default_factory=dict)


def describe_backends(probe: bool = True) -> List[BackendInfo]:
    """Status of every known backend: available / degraded / why.

    With ``probe=True`` (default) each installed backend is actually
    constructed through the process cache — for numba that means JIT
    compilation plus the bit-identity probes, so the per-kernel column shows
    what *really* executes on this host instead of what nominally should.
    ``probe=False`` only checks library availability (fast, no compilation).
    """
    infos: List[BackendInfo] = []
    for name in KNOWN_BACKENDS:
        requires = _BACKEND_REQUIRES.get(name)
        installed = requires is None or importlib.util.find_spec(requires) is not None
        if name == "numpy":
            infos.append(
                BackendInfo(
                    name="numpy",
                    installed=True,
                    status="reference",
                    detail="bit-identity reference; always available",
                    kernels=NumpyBackend().kernel_status() if probe else {},
                )
            )
            continue
        if not installed:
            infos.append(
                BackendInfo(
                    name=name,
                    installed=False,
                    status="degraded-to-numpy",
                    detail=f"{requires} is not installed",
                )
            )
            continue
        if not probe:
            infos.append(
                BackendInfo(
                    name=name,
                    installed=True,
                    status="available",
                    detail=f"{requires} importable (not probed; pass --probe for kernel status)",
                )
            )
            continue
        backend = shared_backend(name)
        if backend.name != name:
            infos.append(
                BackendInfo(
                    name=name,
                    installed=True,
                    status="degraded-to-numpy",
                    detail=backend.fallback_reason or "construction failed",
                )
            )
            continue
        kernels = backend.kernel_status()
        degraded = sorted(k for k, note in kernels.items() if note.startswith("numpy (jit failed"))
        detail = "all kernels active"
        if degraded:
            detail = f"kernels rejected by probe: {', '.join(degraded)}"
        elif name in ("torch", "cupy"):
            detail = "routed (no bit-identity promise)"
        infos.append(
            BackendInfo(
                name=name, installed=True, status="available", detail=detail, kernels=kernels
            )
        )
    return infos
