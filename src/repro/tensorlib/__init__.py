"""Numpy-backed reverse-mode automatic differentiation engine.

This package provides the tensor substrate that the rest of the reproduction is
built on.  The paper's prototype uses PyTorch; no deep-learning framework is
available in this environment, so :mod:`repro.tensorlib` implements the minimal
but complete set of differentiable operations needed to train the evaluation
models (VGG19, ResNet-18/152, ViT-Base-16) from scratch:

* a :class:`Tensor` object carrying a value, a gradient and a backward closure,
* broadcasting-aware elementwise arithmetic,
* matrix multiplication, reductions, reshaping/transposition/indexing,
* convolution and pooling primitives built on im2col,
* the nonlinearities and normalisation statistics used by the model zoo.

The engine is intentionally small and explicit: every op registers a backward
closure on the output tensor and :meth:`Tensor.backward` performs a topological
sweep.  There is no graph caching, fusion or device abstraction — clarity over
speed, since training time in the experiments is *modeled* (see
``repro.simulation``) rather than measured.
"""

from repro.tensorlib.tensor import Tensor, no_grad, is_grad_enabled, set_grad_enabled
from repro.tensorlib.dtypes import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.tensorlib.backend import (
    KNOWN_BACKENDS,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.tensorlib import backend
from repro.tensorlib import functional
from repro.tensorlib import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "resolve_dtype",
    "KNOWN_BACKENDS",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "backend",
    "functional",
    "init",
]
