"""Error-feedback study: does EF rescue aggressive compressors?

One campaign sweeps the ``error_feedback`` method-field axis over three
aggressive compressor families — top-k 1 % selection, signSGD with majority
vote and PowerSGD rank-4 low-rank — at two bottleneck bandwidths.  For every
(compressor, bandwidth) pair the table compares the no-EF and EF variants'
final accuracy and wire volume: EF retransmits the dropped gradient mass once
its accumulated error grows, so it changes *convergence*, never bytes on the
wire (the residual rides inside each rank, not on the network).

    python examples/error_feedback_study.py [--quick] [--store ef.jsonl] [--jobs 4]

``--quick`` shrinks the workload to a seconds-scale smoke run (what CI
executes); the default settings train long enough for the EF/no-EF accuracy
gap to be visible.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.campaign import CampaignSpec, ResultStore, run_campaign

#: The aggressive compressor families under study.  The ``error_feedback``
#: axis is tri-state on MethodSpec; sweeping [false, true] forces every form
#: of compensation off/on uniformly — the ``false`` arm strips even the
#: stage-internal residuals top-k carries in its paper form, so all three
#: no-EF arms are genuinely uncompensated.
COMPRESSORS = ("topk0.01", "signsgd", "powersgd-rank4")
BANDWIDTHS = ("100Mbps", "1Gbps")


def study_campaign(quick: bool = False) -> CampaignSpec:
    base = {
        "model": "resnet18",
        "dataset": "cifar10",
        "world_size": 4,
        "batch_size": 8,
        "dataset_samples": 32 if quick else 128,
        "epochs": 1 if quick else 8,
        "max_iterations_per_epoch": 2 if quick else None,
        "pretrain_iterations": 0 if quick else 3,
        "noise_std": 0.3,
        "lr": 0.05,
        "momentum": 0.0,
        "seed": 0,
    }
    if base["max_iterations_per_epoch"] is None:
        del base["max_iterations_per_epoch"]
    return CampaignSpec(
        name="error-feedback-study",
        base=base,
        axes={
            "bandwidth": list(BANDWIDTHS if not quick else BANDWIDTHS[:1]),
            "method": list(COMPRESSORS),
            "error_feedback": [False, True],
        },
    )


def run_study(quick: bool = False, store_path: Optional[str] = None, jobs: int = 1) -> None:
    spec = study_campaign(quick=quick)
    print(
        f"Error-feedback study: {len(spec)} cells "
        f"({'quick smoke' if quick else 'full'} workload)\n"
    )
    store = ResultStore(store_path) if store_path else None
    report = run_campaign(spec, store=store, jobs=jobs)
    report.raise_failures()
    print(report.summary() + "\n")

    by_cell = {
        (outcome.cell.method.compressor, outcome.result.bandwidth_mbps,
         outcome.cell.method.error_feedback): outcome.result
        for outcome in report.outcomes
        if outcome.result is not None
    }
    bandwidths = sorted({key[1] for key in by_cell})
    print(f"{'compressor':<16} {'Mbps':>6} {'no-EF acc':>10} {'EF acc':>8} "
          f"{'MB/worker':>10} {'EF gain':>8}")
    for compressor in COMPRESSORS:
        for mbps in bandwidths:
            raw = by_cell.get((compressor, mbps, False))
            ef = by_cell.get((compressor, mbps, True))
            if raw is None or ef is None:
                continue
            gain = ef.final_accuracy - raw.final_accuracy
            print(
                f"{compressor:<16} {mbps:>6g} {raw.final_accuracy:>10.3f} "
                f"{ef.final_accuracy:>8.3f} "
                f"{ef.comm_bytes_per_worker / 1e6:>10.2f} {gain:>+8.3f}"
            )
    print(
        "\nEF changes convergence, not bytes: each (compressor, bandwidth) pair "
        "reports one wire volume because the residual never touches the network."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke workload (used by CI)")
    parser.add_argument("--store", default=None, help="optional result store (enables caching)")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()
    run_study(quick=args.quick, store_path=args.store, jobs=args.jobs)
