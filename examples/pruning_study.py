"""Pruning-ratio study: accuracy and communication volume versus pruning ratio.

A compact version of the paper's Fig. 6 plus the communication side of the
story: as the pruning ratio grows, PacTrain's wire volume shrinks linearly
(communication cost "scales proportionally to the pruning ratio", §IV.C.2)
while final accuracy stays flat until the ratio becomes extreme.

Run with:  python examples/pruning_study.py
"""

from __future__ import annotations

from repro.simulation import ClusterSpec, ExperimentConfig, MethodSpec, run_experiment

PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.9, 0.99)


def main(model: str = "resnet18") -> None:
    config = ExperimentConfig(
        model=model,
        dataset="cifar10",
        cluster=ClusterSpec(world_size=8, bandwidth="1Gbps"),
        epochs=5,
        batch_size=16,
        dataset_samples=256,
        max_iterations_per_epoch=4,
        seed=0,
    )

    print(f"Workload: {model}, 8 workers, 1 Gbps, 5 epochs\n")
    print(f"{'pruning ratio':>13} {'final acc':>10} {'weight sparsity':>16} {'MB/worker':>10} {'comm (s)':>9}")
    for ratio in PRUNING_RATIOS:
        method = MethodSpec(
            name=f"pactrain-{ratio:g}",
            compressor="pactrain",
            pruning_ratio=ratio,
            gse=ratio > 0,
            quantize=False,
        )
        result = run_experiment(config, method)
        print(
            f"{ratio:>13.2f} {result.final_accuracy:>10.3f} {result.weight_sparsity:>16.3f} "
            f"{result.comm_bytes_per_worker / 1e6:>10.2f} {result.comm_time:>9.3f}"
        )


if __name__ == "__main__":
    main()
