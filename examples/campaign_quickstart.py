"""Campaign quickstart: declare a sweep, run it in parallel, query the store.

The :mod:`repro.campaign` subsystem turns parameter studies from nested loops
into data.  This example declares a miniature version of the paper's Fig. 3
grid (one model, two bandwidths, three methods, two seeds), executes it with
a process pool, and then answers questions from the persistent result store —
including the paper's relative-TTA presentation.

Run it twice to see the content-addressed cache at work: the second run
executes zero training runs.

    python examples/campaign_quickstart.py [--jobs 4]
"""

from __future__ import annotations

import argparse

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.cli import format_table

STORE_PATH = "campaign_results/quickstart.jsonl"


def quickstart_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="quickstart",
        base={
            "model": "resnet18",
            "epochs": 3,
            "batch_size": 16,
            "dataset_samples": 128,
            "max_iterations_per_epoch": 2,
            "target_accuracy": 0.7,
            "world_size": 4,
        },
        # Grid axes: the cartesian product, 2 x 3 x 2 = 12 cells.
        axes={
            "bandwidth": ["100Mbps", "1Gbps"],
            "method": ["all-reduce", "fp16", "pactrain"],
            "seed": [0, 1],
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    args = parser.parse_args()

    spec = quickstart_campaign()
    store = ResultStore(STORE_PATH)
    print(f"campaign {spec.name!r}: {len(spec.expand())} cells -> {STORE_PATH}")

    report = run_campaign(
        spec,
        store=store,
        jobs=args.jobs,
        progress=lambda p: print(
            f"  [{p.done:2d}/{p.total}] {p.outcome.status:<6} {p.outcome.cell.label}"
            + (f"  [{p.elapsed_s:.1f}s]" if not p.cache_hit else "")
        ),
    )
    report.raise_failures()
    print(report.summary())

    # Query 1: simulated training time per (method, bandwidth), averaged
    # over the seed axis.
    header, rows = store.pivot("method", "bandwidth_mbps", value="simulated_time")
    print("\nSimulated time (s), mean over seeds:")
    print(format_table(header, rows))

    # Query 2: the paper's headline presentation — TTA relative to all-reduce.
    print("\nRelative TTA (method / all-reduce; < 1 is faster):")
    relative = store.relative_to_baseline("all-reduce", value="tta_or_total")
    rel_rows = [
        (f"{model} @ {mbps:g} Mbps", name, f"{ratio:.3f}")
        for (model, mbps), by_method in sorted(relative.items(), key=str)
        for name, ratio in by_method.items()
        if name != "all-reduce"
    ]
    print(format_table(("workload", "method", "relative TTA"), rel_rows))

    print("\nRun me again: every cell is now a cache hit (ran=0).")


if __name__ == "__main__":
    main()
