"""Straggler study: heterogeneous workers under the event-driven engine.

Synchronous data-parallel training finishes each iteration at the *slowest*
rank — an effect the seed `compute + comm` time model could not express.  This
example trains the same workload on clusters whose last worker is 1x / 1.5x /
2x / 3x slower than the rest, with per-bucket compute/comm overlap enabled,
and reports how the simulated time, the time lost to waiting on the straggler
and the hidden-communication fraction change.  A final run shows the
equivalent mixed-device cluster (`devices=[...]`) instead of a multiplier.

Run with:  python examples/straggler_study.py [--regime localsgd:4]

With ``--regime localsgd:H`` the same clusters train under local SGD — a
straggler then only gates progress at the averaging rounds, so the waiting
time shrinks with H.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.simulation import (
    ClusterSpec,
    DeviceSpec,
    ExperimentConfig,
    PAPER_METHODS,
    run_experiment,
)

STRAGGLER_FACTORS = (1.0, 1.5, 2.0, 3.0)
WORLD_SIZE = 4
#: Small bucket cap so the mini ResNet spans several gradient buckets and the
#: engine has per-bucket collectives to overlap with backward compute.
BUCKET_CAP_BYTES = 8 * 1024


def make_config(cluster: ClusterSpec) -> ExperimentConfig:
    return ExperimentConfig(
        model="resnet18",
        dataset="cifar10",
        cluster=cluster,
        epochs=2,
        batch_size=16,
        dataset_samples=128,
        max_iterations_per_epoch=4,
        bucket_cap_bytes=BUCKET_CAP_BYTES,
        seed=0,
    )


def run_study(method_name: str = "all-reduce", regime: str = None) -> None:
    method = PAPER_METHODS[method_name]
    if regime is not None:
        method = dataclasses.replace(method, sync_schedule=regime)
    regime_note = f", regime {regime}" if regime else ""
    print(
        f"Workload: resnet18 on synthetic CIFAR-10, {WORLD_SIZE} workers @ 100 Mbps, "
        f"method {method_name}{regime_note}, overlap on\n"
    )
    print(f"{'cluster':<22} {'sim time (s)':>12} {'straggler wait (s)':>18} {'comm hidden':>11}")

    for factor in STRAGGLER_FACTORS:
        cluster = ClusterSpec(
            world_size=WORLD_SIZE, bandwidth="100Mbps", overlap=True, straggler=factor
        )
        result = run_experiment(make_config(cluster), method)
        label = "homogeneous" if factor == 1.0 else f"straggler x{factor}"
        print(
            f"{label:<22} {result.simulated_time:>12.3f} {result.straggler_time:>18.3f} "
            f"{result.overlap_fraction * 100:>10.1f}%"
        )

    # The same asymmetry expressed as per-worker devices: three fast workers
    # and one with half the effective FLOP throughput.
    fast = DeviceSpec("fast", 2.0e9)
    slow = DeviceSpec("slow", 1.0e9)
    cluster = ClusterSpec(
        world_size=WORLD_SIZE,
        bandwidth="100Mbps",
        overlap=True,
        devices=[fast, fast, fast, slow],
    )
    result = run_experiment(make_config(cluster), method)
    print(
        f"{'devices 3xfast+1xslow':<22} {result.simulated_time:>12.3f} "
        f"{result.straggler_time:>18.3f} {result.overlap_fraction * 100:>10.1f}%"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--method", default="all-reduce", choices=sorted(PAPER_METHODS))
    parser.add_argument("--regime", default=None, metavar="SPEC",
                        help="training regime, e.g. 'localsgd:4' (default: synchronous)")
    args = parser.parse_args()
    run_study(args.method, regime=args.regime)
