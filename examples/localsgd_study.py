"""Local-SGD study: trading synchronisation frequency against bandwidth.

Local SGD takes H optimizer steps per rank between averaging rounds, cutting
collective traffic by ~H at the cost of replica divergence between rounds.
Whether that trade wins depends on the network: under a constrained
bottleneck link the communication saved dominates, on a fast link synchronous
training is already cheap.  This example sweeps the sync period H (1 = fully
synchronous) against bottleneck bandwidth on the same dense-gradient workload
and reports simulated time-to-accuracy per cell; the winner per bandwidth
column makes the crossover visible.

``localsgd:1`` routes through the synchronous training loop (averaging every
step *is* synchronous training), so the H=1 row doubles as the exact
baseline.

Run with:  python examples/localsgd_study.py [--quick] [--delta]
           [--store study.jsonl] [--jobs 4]
"""

from __future__ import annotations

import argparse

from repro.campaign import CampaignSpec, ResultStore, run_campaign

BANDWIDTHS = ("100Mbps", "1Gbps")
PERIODS = (1, 2, 4, 8)


def study_campaign(quick: bool = False, delta: bool = False) -> CampaignSpec:
    suffix = ":delta" if delta else ""
    schedules = ["sync"] + [f"localsgd:{h}{suffix}" for h in PERIODS if h > 1]
    base = {
        "model": "mlp",
        "dataset": "cifar10",
        "method": "topk-0.01" if delta else "all-reduce",
        "world_size": 4,
        "batch_size": 8,
        "image_size": 8,
        "pretrain_iterations": 2,
        "target_accuracy": 0.5,
        "seed": 0,
    }
    if quick:
        base.update(epochs=1, dataset_samples=32, max_iterations_per_epoch=2)
    else:
        base.update(epochs=6, dataset_samples=192, max_iterations_per_epoch=6)
    return CampaignSpec(
        name="localsgd-study",
        base=base,
        axes={
            "bandwidth": list(BANDWIDTHS[:1] if quick else BANDWIDTHS),
            "sync_schedule": schedules,
        },
    )


def run_study(
    quick: bool = False,
    delta: bool = False,
    store_path: str | None = None,
    jobs: int = 1,
) -> None:
    mode = "delta-compressed (top-k 1%)" if delta else "dense"
    print(
        f"Workload: mlp on synthetic CIFAR-10, 4 workers, {mode} averaging, "
        f"target accuracy 0.5\n"
    )
    store = ResultStore(store_path) if store_path else None
    report = run_campaign(study_campaign(quick, delta), store=store, jobs=jobs)
    report.raise_failures()
    print(report.summary() + "\n")

    by_bandwidth: dict[float, list] = {}
    for result in report.results():
        by_bandwidth.setdefault(result.bandwidth_mbps, []).append(result)

    for mbps in sorted(by_bandwidth):
        results = by_bandwidth[mbps]
        print(f"--- bottleneck bandwidth: {mbps:g} Mbps ---")
        print(
            f"{'schedule':<18} {'final acc':>9} {'TTA (s)':>10} {'comm (s)':>9} "
            f"{'sync rounds':>11} {'local steps':>11}"
        )
        best = min(results, key=lambda r: r.tta_or_total())
        for result in results:
            schedule = result.method.partition("@")[2] or "sync"
            marker = "  <- best" if result is best else ""
            print(
                f"{schedule:<18} {result.final_accuracy:>9.3f} "
                f"{result.tta_or_total():>10.4f} {result.comm_time:>9.4f} "
                f"{result.sync_rounds:>11d} {result.local_steps:>11d}{marker}"
            )
        print()

    if not quick:
        constrained = by_bandwidth[min(by_bandwidth)]
        sync_tta = next(
            r.tta_or_total() for r in constrained if "@" not in r.method
        )
        fast_periods = [
            r
            for r in constrained
            if "@localsgd:" in r.method
            and int(r.method.split("@localsgd:")[1].split(":")[0]) >= 4
        ]
        best_fast = min(r.tta_or_total() for r in fast_periods)
        speedup = sync_tta / best_fast
        print(
            f"At {min(by_bandwidth):g} Mbps, H>=4 local SGD reaches the target "
            f"{speedup:.2f}x faster than synchronous training "
            f"({best_fast:.4f}s vs {sync_tta:.4f}s simulated)."
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for CI smoke (one bandwidth, 1 epoch)")
    parser.add_argument("--delta", action="store_true",
                        help="compress sync-round deltas through top-k 1% instead "
                             "of dense averaging")
    parser.add_argument("--store", default=None, help="optional result store")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()
    run_study(args.quick, args.delta, store_path=args.store, jobs=args.jobs)
