"""Quickstart: train a pruned model with PacTrain and compare against DDP all-reduce.

Runs in well under a minute on a laptop CPU.  It reproduces, at mini scale, the
paper's core workflow (Algorithm 1):

1. start from a (briefly pre-trained) model and prune 50 % of its weights;
2. fine-tune with 8 simulated data-parallel workers behind a 100 Mbps bottleneck,
   applying Gradient Sparsity Enforcement every iteration;
3. let the Mask Tracker detect the stable gradient sparsity pattern and switch
   gradient synchronisation to PacTrain's compact, all-reduce-compatible form;
4. compare simulated Time-To-Accuracy against the native all-reduce baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.pactrain import PacTrainConfig, PacTrainTrainer
from repro.simulation import ClusterSpec


def main() -> None:
    cluster = ClusterSpec(world_size=8, bandwidth="100Mbps")
    trainer = PacTrainTrainer(
        model="resnet18",
        dataset="cifar10",
        cluster=cluster,
        config=PacTrainConfig(pruning_ratio=0.5, stability_threshold=3, quantize=True),
        epochs=4,
        batch_size=16,
        dataset_samples=256,
        target_accuracy=0.7,
        seed=0,
    )

    print("Cluster:", cluster.describe())
    print("\nRunning PacTrain (prune 0.5 + GSE + adaptive sparse compression)...")
    pactrain = trainer.run()
    print("\nRunning the native all-reduce baseline on the same workload...")
    baseline = trainer.run_baseline("allreduce")

    print("\n=== Results (simulated time; accuracy from real training) ===")
    header = f"{'method':<12} {'final acc':>9} {'sim time':>10} {'comm time':>10} {'MB/worker':>10}"
    print(header)
    print("-" * len(header))
    for result in (baseline, pactrain):
        print(
            f"{result.method:<12} {result.final_accuracy:>9.3f} "
            f"{result.simulated_time:>9.2f}s {result.comm_time:>9.2f}s "
            f"{result.comm_bytes_per_worker / 1e6:>10.2f}"
        )

    speedup = baseline.tta_or_total() / pactrain.tta_or_total()
    print(f"\nPacTrain weight sparsity: {pactrain.weight_sparsity:.2f}")
    print(f"Fraction of bucket syncs using the compact path: {pactrain.extra.get('compact_fraction', 0):.2f}")
    print(f"Time-to-accuracy speedup over all-reduce: {speedup:.2f}x")


if __name__ == "__main__":
    main()
