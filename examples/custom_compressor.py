"""Extending the framework: write a custom codec stage and plug it into DDP.

This example shows the lower-level API the PacTrain implementation itself is
built on:

* implement a custom :class:`repro.compression.Codec` stage (here: a toy
  "sign-SGD with shared scale" codec) — ``prepare`` agrees on the scale
  across ranks, ``encode`` emits a 1-bit-per-element wire payload, ``decode``
  rescales back to gradient units;
* bind it to the shared encode/reduce/decode driver with
  :class:`repro.compression.CodecCompressor` and register it under a name so
  experiment configurations can refer to it;
* drive the DDP simulator directly — per-rank forward/backward, bucketed
  gradient exchange — and inspect the Mask Tracker on the flat bucket
  gradients, exactly the view a PyTorch DDP comm hook would see.

Note there is no byte bookkeeping anywhere in the custom code: the collective
layer reads the wire size straight off the payload (``payload.nbytes``).

A production version of this idea ships built in as
:class:`repro.compression.codec.Sign` (spec ``"signsgd"``, or ``"ef+signsgd"``
with driver-level error feedback): bit-packed :class:`SignPayload` wire format
and a majority-vote reduce.  This example keeps its own toy stage because its
point is the extension API, not the codec.

Run with:  python examples/custom_compressor.py
"""

from __future__ import annotations

import numpy as np

from repro.comm import NetworkModel, ProcessGroup
from repro.compression import (
    Codec,
    CodecCompressor,
    DensePayload,
    build_compressor,
    register_compressor,
)
from repro.data import DataLoader, DistributedSampler, synthetic_cifar10
from repro.ddp import DistributedDataParallel
from repro.nn import SGD
from repro.nn.models import build_model
from repro.pactrain import MaskTracker
from repro.pruning import apply_gse, magnitude_prune
from repro.tensorlib import functional as F

WORLD_SIZE = 4
SIGN_BYTES = 1.0 / 8.0  # one bit per element on the wire


class SignCodec(Codec):
    """Sign compression: transmit sign(grad) plus one shared scale per bucket."""

    name = "sign"
    allreduce_compatible = True  # signs are element-wise summable

    def __init__(self) -> None:
        self._scale = 1.0

    def prepare(self, inputs, ctx):
        # Shared scale: the mean absolute gradient across ranks.  The
        # one-scalar all-reduce is issued for its modeled cost; the shared
        # value is computed locally (the simulation holds all ranks in-process).
        means = [float(np.mean(np.abs(p.values))) for p in inputs]
        if ctx.group is not None:
            ctx.group.all_reduce([DensePayload(np.array([m])) for m in means], average=True)
        self._scale = float(np.mean(means))

    def encode(self, payload, ctx, rank=0):
        # One bit per element on the wire: the payload *is* the byte account.
        return DensePayload(np.sign(payload.values), element_bytes=SIGN_BYTES)

    def decode(self, payload):
        return DensePayload(np.asarray(payload.values, dtype=np.float64) * self._scale)


def main() -> None:
    register_compressor("sign", lambda: CodecCompressor([SignCodec()], name="sign"))

    dataset = synthetic_cifar10(num_samples=256, image_size=8, seed=0)
    model = build_model("vgg19", num_classes=10, seed=0)
    mask = magnitude_prune(model, 0.5)

    network = NetworkModel.from_paper_setting(WORLD_SIZE, "100Mbps")
    group = ProcessGroup(WORLD_SIZE, network)
    ddp = DistributedDataParallel(
        model, world_size=WORLD_SIZE, process_group=group, comm_hook=build_compressor("sign")
    )
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    tracker = MaskTracker(stability_threshold=2)

    loaders = [
        DataLoader(dataset, batch_size=16, sampler=DistributedSampler(len(dataset), WORLD_SIZE, rank))
        for rank in range(WORLD_SIZE)
    ]

    print(f"Training VGG19-mini with a custom sign codec on {WORLD_SIZE} workers\n")
    for epoch in range(2):
        for loader in loaders:
            loader.set_epoch(epoch)
        for batches in zip(*loaders):
            per_rank_grads = []
            losses = []
            for batch in batches:
                loss, grads = ddp.compute_local_gradients(batch, F.cross_entropy)
                per_rank_grads.append(apply_gse(model, mask, grads=grads))
                losses.append(loss)

            # Peek at what a comm hook sees: flat, nameless bucket gradients.
            bucket = ddp.buckets[0]
            flats = [bucket.flatten(grads) for grads in per_rank_grads]
            state = tracker.update_from_rank_gradients(bucket.index, flats)

            # The traced variant returns each bucket's collective events (DDP
            # drains the group's per-step log; whole-run totals live in the
            # group's lifetime_* counters).
            aggregated, bucket_events = ddp.synchronize_gradients_traced(per_rank_grads)
            ddp.apply_aggregated_gradients(aggregated)
            optimizer.step()
            mask.apply_to_weights(model)

            comm_time = sum(e.time_seconds for per_bucket in bucket_events for e in per_bucket)
            print(
                f"epoch {epoch} loss={np.mean(losses):.3f} "
                f"bucket density={state.density:.2f} stable={state.stable} "
                f"comm={comm_time * 1e3:.1f} ms"
            )

    compressor = ddp._hook.compressor  # the CodecCompressor instance
    print(f"\nSign codec wire ratio: {compressor.stats.compression_ratio:.1f}x "
          f"(raw {compressor.stats.raw_bytes / 1e6:.2f} MB -> {compressor.stats.wire_bytes / 1e6:.3f} MB)")


if __name__ == "__main__":
    main()
