"""Fault study: rank crash and re-join under the fault-injection engine.

A :class:`~repro.simulation.faults.FaultPlan` attached to the cluster spec
schedules failures on the *simulated* clock: here rank 3 crashes early in the
run, the survivors' WAN link degrades to half bandwidth for a window, and the
rank re-joins later, paying a state-broadcast re-synchronisation cost.  The
experiment driver interprets the plan between iterations — collectives run
over the surviving membership, error-feedback residuals are resized on every
membership change, and the timeline accounts downtime, re-join cost and the
resulting goodput fraction.

The same workload runs healthy first so the fault overhead is visible as a
diff.  With ``--trace PATH`` the run also emits ``fault/*`` instants and
``fault/degraded-world`` spans on the simulated clock; convert them with
``python -m repro trace export PATH`` and load the result in Perfetto.

Run with:  python examples/fault_study.py [--trace fault_study.jsonl]
"""

from __future__ import annotations

import argparse

from repro import obs
from repro.simulation import (
    ClusterSpec,
    ExperimentConfig,
    PAPER_METHODS,
    run_experiment,
)

WORLD_SIZE = 4

#: The mini-MLP iterates in ~2 ms of simulated time at 100 Mbps, so the whole
#: schedule lives in the first few hundredths of a simulated second: crash at
#: 2 ms, halve the link from 4 ms to 6 ms, re-join at 8 ms.
FAULT_PLAN = "crash:3@0.002,link:0.5@0.004-0.006,rejoin:3@0.008"


def make_config(faults: str | None) -> ExperimentConfig:
    return ExperimentConfig(
        model="mlp",
        dataset="cifar10",
        cluster=ClusterSpec(world_size=WORLD_SIZE, bandwidth="100Mbps", faults=faults),
        epochs=3,
        batch_size=8,
        dataset_samples=48,
        image_size=8,
        pretrain_iterations=2,
        max_iterations_per_epoch=4,
        seed=0,
    )


def run_study(
    method_name: str = "topk-0.1",
    trace_path: str | None = None,
    regime: str | None = None,
) -> None:
    import dataclasses  # noqa: PLC0415

    method = PAPER_METHODS[method_name]
    if regime is not None:
        # Local SGD composes with fault plans (the async parameter server
        # does not — it models a different failure domain and rejects them).
        method = dataclasses.replace(method, sync_schedule=regime)
    print(
        f"Workload: mlp on synthetic CIFAR-10, {WORLD_SIZE} workers @ 100 Mbps, "
        f"method {method_name} (error feedback on, residuals resized on "
        f"membership changes)\n"
    )
    print(f"Fault plan: {FAULT_PLAN}\n")

    healthy = run_experiment(make_config(None), method)

    if trace_path:
        obs.enable(path=trace_path, role="main")
    try:
        faulted = run_experiment(make_config(FAULT_PLAN), method)
    finally:
        if trace_path:
            obs.disable()

    rows = (
        ("simulated time (s)", f"{healthy.simulated_time:.6f}", f"{faulted.simulated_time:.6f}"),
        ("final accuracy", f"{healthy.final_accuracy:.4f}", f"{faulted.final_accuracy:.4f}"),
        ("fault events", healthy.fault_events, faulted.fault_events),
        ("degraded iterations", healthy.degraded_iterations, faulted.degraded_iterations),
        (
            "downtime (rank-s)",
            f"{healthy.downtime_rank_seconds:.6f}",
            f"{faulted.downtime_rank_seconds:.6f}",
        ),
        ("re-join cost (s)", f"{healthy.rejoin_cost_time:.6f}", f"{faulted.rejoin_cost_time:.6f}"),
        ("goodput fraction", f"{healthy.goodput_fraction:.4f}", f"{faulted.goodput_fraction:.4f}"),
    )
    print(f"{'metric':<22} {'healthy':>12} {'crash+rejoin':>14}")
    for name, base, fault in rows:
        print(f"{name:<22} {base!s:>12} {fault!s:>14}")

    overhead = faulted.simulated_time - healthy.simulated_time
    print(
        f"\nThe crash removes rank 3 for 6 ms of simulated time "
        f"({faulted.degraded_iterations} degraded iterations); the re-join pays "
        f"a one-off state broadcast of {faulted.rejoin_cost_time * 1e3:.3f} ms, "
        f"for {overhead * 1e3:+.3f} ms total overhead."
    )
    if trace_path:
        print(
            f"\nTrace written to {trace_path} — fault instants and degraded-world "
            f"spans are on the simulated clock.  Export for Perfetto with:\n"
            f"  python -m repro trace export {trace_path}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--method", default="topk-0.1", choices=sorted(PAPER_METHODS))
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write an observability trace of the faulted run")
    parser.add_argument("--regime", default=None, metavar="SPEC",
                        help="training regime, e.g. 'localsgd:4:delta' "
                             "(default: synchronous; 'ps' rejects fault plans)")
    args = parser.parse_args()
    run_study(args.method, args.trace, regime=args.regime)
