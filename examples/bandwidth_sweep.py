"""Bandwidth sweep: how the benefit of gradient compression depends on the network.

A compact version of the paper's Fig. 3: the same workload (ResNet-18 on the
synthetic CIFAR-10 stand-in, 8 workers) is trained under every compression
method at 100 Mbps, 500 Mbps and 1 Gbps bottleneck bandwidth, and the relative
TTA (normalised to native all-reduce) is printed per bandwidth.

Run with:  python examples/bandwidth_sweep.py
"""

from __future__ import annotations

from repro.metrics import speedup_table
from repro.simulation import ClusterSpec, ExperimentConfig, PAPER_METHODS, run_experiment

BANDWIDTHS = ("100Mbps", "500Mbps", "1Gbps")


def run_sweep(model: str = "resnet18") -> None:
    print(f"Workload: {model} on synthetic CIFAR-10, 8 workers, target accuracy 0.7\n")
    for bandwidth in BANDWIDTHS:
        config = ExperimentConfig(
            model=model,
            dataset="cifar10",
            cluster=ClusterSpec(world_size=8, bandwidth=bandwidth),
            epochs=4,
            batch_size=16,
            dataset_samples=256,
            max_iterations_per_epoch=4,
            target_accuracy=0.7,
            seed=0,
        )
        ttas = {}
        rows = []
        for name, method in PAPER_METHODS.items():
            result = run_experiment(config, method)
            ttas[name] = result.tta_or_total()
            rows.append(
                (name, result.final_accuracy, result.tta_or_total(), result.comm_time)
            )
        speedups = speedup_table(ttas, baseline="all-reduce")

        print(f"--- bottleneck bandwidth: {bandwidth} ---")
        print(f"{'method':<12} {'final acc':>9} {'TTA (s)':>9} {'comm (s)':>9} {'speedup':>8}")
        for name, accuracy, tta, comm in rows:
            print(f"{name:<12} {accuracy:>9.3f} {tta:>9.3f} {comm:>9.3f} {speedups[name]:>7.2f}x")
        print()


if __name__ == "__main__":
    run_sweep()
