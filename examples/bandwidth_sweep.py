"""Bandwidth sweep: how the benefit of gradient compression depends on the network.

A compact version of the paper's Fig. 3, declared as a single campaign: the
same workload (ResNet-18 on the synthetic CIFAR-10 stand-in, 8 workers) is
trained under every compression method at 100 Mbps, 500 Mbps and 1 Gbps
bottleneck bandwidth, and the relative TTA (normalised to native all-reduce)
is printed per bandwidth.

The campaign runner executes the 15 cells; pass a store path to cache them
(a second invocation is then pure cache hits) and ``--jobs N`` to train in
parallel worker processes:

    python examples/bandwidth_sweep.py [--store sweep.jsonl] [--jobs 4]
"""

from __future__ import annotations

import argparse

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.metrics import speedup_table
from repro.simulation import PAPER_METHODS

BANDWIDTHS = ("100Mbps", "500Mbps", "1Gbps")


def sweep_campaign(model: str = "resnet18", regime: str = None) -> CampaignSpec:
    base = {
        "model": model,
        "dataset": "cifar10",
        "world_size": 8,
        "epochs": 4,
        "batch_size": 16,
        "dataset_samples": 256,
        "max_iterations_per_epoch": 4,
        "target_accuracy": 0.7,
        "seed": 0,
    }
    if regime is not None:
        base["sync_schedule"] = regime
    return CampaignSpec(
        name="bandwidth-sweep",
        base=base,
        axes={
            "bandwidth": list(BANDWIDTHS),
            "method": list(PAPER_METHODS),
        },
    )


def run_sweep(
    model: str = "resnet18", store_path: str = None, jobs: int = 1, regime: str = None
) -> None:
    print(f"Workload: {model} on synthetic CIFAR-10, 8 workers, target accuracy 0.7\n")
    store = ResultStore(store_path) if store_path else None
    report = run_campaign(sweep_campaign(model, regime), store=store, jobs=jobs)
    report.raise_failures()
    print(report.summary() + "\n")

    by_bandwidth = {}
    for result in report.results():
        by_bandwidth.setdefault(result.bandwidth_mbps, []).append(result)

    for bandwidth, mbps in zip(BANDWIDTHS, sorted(by_bandwidth)):
        results = by_bandwidth[mbps]
        # Regime overrides suffix the stored method name with "@schedule";
        # strip it so the speedup baseline stays "all-reduce" either way.
        ttas = {result.method.partition("@")[0]: result.tta_or_total() for result in results}
        speedups = speedup_table(ttas, baseline="all-reduce")
        print(f"--- bottleneck bandwidth: {bandwidth} ---")
        print(f"{'method':<12} {'final acc':>9} {'TTA (s)':>9} {'comm (s)':>9} {'speedup':>8}")
        for result in results:
            method = result.method.partition("@")[0]
            print(
                f"{method:<12} {result.final_accuracy:>9.3f} "
                f"{result.tta_or_total():>9.3f} {result.comm_time:>9.3f} "
                f"{speedups[method]:>7.2f}x"
            )
        print()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet18")
    parser.add_argument("--store", default=None, help="optional result store (enables caching)")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--regime", default=None, metavar="SPEC",
                        help="training regime for every cell, e.g. 'localsgd:4' "
                             "or 'localsgd:4:delta' (default: synchronous)")
    args = parser.parse_args()
    run_sweep(args.model, store_path=args.store, jobs=args.jobs, regime=args.regime)
